//! Differential tests for the two trace representations.
//!
//! Every kernel family emits its window trace through one generic emitter
//! that can feed either a full event trace (`BlockTrace`) or an aggregated
//! counter trace (`CounterTrace`). These tests pin the contract the cost
//! model relies on: for every window of a mixed graph, the counters
//! accumulated directly must equal the recount of the event trace, and the
//! `BlockCost` derived from either representation must charge *identical*
//! cycles on every device.

use gpu_sim::trace::CounterTrace;
use gpu_sim::{BlockCost, DeviceSpec};
use graph_sparse::{gen, Csr, RowWindowPartition};
use hc_core::{CudaSpmm, HcSpmm, StraightforwardHybrid, TensorSpmm};

/// A graph with dense communities and a sparse fringe, so windows cover
/// both core types and mixed per-tile splits.
fn mixed_graph() -> Csr {
    gen::community(2_048, 16_000, 48, 0.85, 23)
}

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::rtx3090(), DeviceSpec::a100()]
}

/// Assert event- and counter-mode emissions of one window agree in every
/// observable the cost model consumes.
fn assert_modes_agree(
    family: &str,
    event: &gpu_sim::BlockTrace,
    counters: &CounterTrace,
    dev: &DeviceSpec,
) {
    let recount = CounterTrace::from_trace(event);
    assert_eq!(
        recount, *counters,
        "{family}: direct counter emission != event-trace recount"
    );
    assert_eq!(counters.ops() as usize, event.len(), "{family}: op totals");
    let from_event = BlockCost::from(event);
    let from_counters = BlockCost::from(counters);
    assert_eq!(
        from_event, from_counters,
        "{family}: billed counters differ by representation"
    );
    // Bitwise-identical cycles, not approximately equal: both paths must
    // flow through the same counters.
    assert_eq!(
        from_event.cycles(dev).to_bits(),
        from_counters.cycles(dev).to_bits(),
        "{family}: representations charge different cycles"
    );
}

#[test]
fn all_four_families_charge_identical_cycles_in_both_modes() {
    let a = mixed_graph();
    let part = RowWindowPartition::build(&a);
    let hc = HcSpmm::default();
    let cuda = CudaSpmm::optimized();
    let tensor = TensorSpmm::optimized();
    let sf = StraightforwardHybrid::default();
    for dev in devices() {
        let pre = hc.preprocess(&a, &dev);
        let mut checked = 0usize;
        for (wi, w) in part.windows.iter().enumerate() {
            if w.is_empty() {
                continue;
            }
            for dim in [32, 47] {
                let (n, c, r) = (w.nnz, w.nnz_cols(), w.rows);
                assert_modes_agree(
                    "cuda",
                    &cuda.window_trace(n, c, r, dim, &dev),
                    &cuda.window_counters(n, c, r, dim, &dev),
                    &dev,
                );
                assert_modes_agree(
                    "tensor",
                    &tensor.window_trace(n, c, r, dim, &dev),
                    &tensor.window_counters(n, c, r, dim, &dev),
                    &dev,
                );
                assert_modes_agree(
                    "straightforward",
                    &sf.window_trace(w, dim, &dev),
                    &sf.window_counters(w, dim, &dev),
                    &dev,
                );
                let choice = pre.choices[wi];
                assert_modes_agree(
                    "hybrid",
                    &hc.window_trace(w, choice, dim, &dev),
                    &hc.window_counters(w, choice, dim, &dev),
                    &dev,
                );
            }
            checked += 1;
        }
        assert!(checked > 50, "graph too small to exercise the emitters");
    }
}

#[test]
fn unoptimized_variants_agree_too() {
    // The ablation configurations exercise the bank-conflict and
    // extra-gather branches of the emitters.
    let a = gen::molecules(1_024, 4_000, 7);
    let part = RowWindowPartition::build(&a);
    let cuda = CudaSpmm::unoptimized();
    let tensor = TensorSpmm::unoptimized();
    let dev = DeviceSpec::rtx3090();
    for w in part.windows.iter().filter(|w| !w.is_empty()).take(24) {
        let (n, c, r) = (w.nnz, w.nnz_cols(), w.rows);
        assert_modes_agree(
            "cuda(unopt)",
            &cuda.window_trace(n, c, r, 64, &dev),
            &cuda.window_counters(n, c, r, 64, &dev),
            &dev,
        );
        assert_modes_agree(
            "tensor(unopt)",
            &tensor.window_trace(n, c, r, 64, &dev),
            &tensor.window_counters(n, c, r, 64, &dev),
            &dev,
        );
    }
}

#[test]
fn pipelined_tensor_conforms_and_beats_the_synchronous_schedule() {
    // The double-buffered schedule must (a) stay representation-agnostic —
    // CounterTrace bills exactly the pipelined cycles BlockTrace does,
    // prefetch traffic included — and (b) actually be an optimization:
    // on dense windows the pipelined + compressed configuration charges
    // strictly fewer cycles than the legacy synchronous one.
    let a = mixed_graph();
    let part = RowWindowPartition::build(&a);
    let pipelined = TensorSpmm::optimized();
    let legacy = TensorSpmm::uncompressed_unpipelined();
    let dev = DeviceSpec::rtx3090();
    let mut dense_checked = 0usize;
    for w in part.windows.iter().filter(|w| !w.is_empty()).take(64) {
        let (n, c, r) = (w.nnz, w.nnz_cols(), w.rows);
        for dim in [32, 64] {
            assert_modes_agree(
                "tensor(pipelined)",
                &pipelined.window_trace(n, c, r, dim, &dev),
                &pipelined.window_counters(n, c, r, dim, &dev),
                &dev,
            );
            assert_modes_agree(
                "tensor(legacy)",
                &legacy.window_trace(n, c, r, dim, &dev),
                &legacy.window_counters(n, c, r, dim, &dev),
                &dev,
            );
            let pc = pipelined.window_counters(n, c, r, dim, &dev);
            let lc = legacy.window_counters(n, c, r, dim, &dev);
            assert!(
                pc.prefetch_transactions > 0,
                "pipelined schedule must stage X fragments via cp.async"
            );
            assert_eq!(
                lc.prefetch_transactions, 0,
                "the synchronous schedule issues no prefetches"
            );
            // Dense enough that X staging dominates: pipelining must win.
            if c >= 32 {
                let p = BlockCost::from(&pc).cycles(&dev);
                let l = BlockCost::from(&lc).cycles(&dev);
                assert!(
                    p < l,
                    "pipelined {p} cycles !< legacy {l} on a {c}-col window"
                );
                dense_checked += 1;
            }
        }
    }
    assert!(dense_checked > 10, "graph lacks dense windows to compare");
}

#[test]
fn counter_mode_skips_event_vectors() {
    // The whole point of counter mode: a window with thousands of events
    // compresses to one fixed-size struct whose op total still matches.
    let a = mixed_graph();
    let part = RowWindowPartition::build(&a);
    let dev = DeviceSpec::rtx3090();
    let tensor = TensorSpmm::optimized();
    let w = part
        .windows
        .iter()
        .max_by_key(|w| w.nnz)
        .expect("non-empty partition");
    let event = tensor.window_trace(w.nnz, w.nnz_cols(), w.rows, 128, &dev);
    let counters = tensor.window_counters(w.nnz, w.nnz_cols(), w.rows, 128, &dev);
    assert!(
        event.len() > 1_000,
        "want a big window, got {}",
        event.len()
    );
    assert_eq!(counters.ops() as usize, event.len());
    assert_eq!(
        std::mem::size_of_val(&counters),
        std::mem::size_of::<CounterTrace>()
    );
}
