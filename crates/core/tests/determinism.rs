//! Parallel determinism: every kernel family must produce bit-identical
//! output at any worker-thread count.
//!
//! The engine parallelizes over *indexed slots* (rows or row-windows):
//! each slot is computed by exactly one worker with the same per-slot
//! arithmetic order as the serial code, and reductions fold in index
//! order on the calling thread. Threads race only for WHICH slot they
//! compute next, never over shared accumulators — so the result is the
//! same bit pattern at 1, 2, or 8 threads, and this test pins that down
//! for all four kernel families on structurally different graphs.
//!
//! Single `#[test]` on purpose: the thread override is process-global, so
//! concurrent tests in one binary would trample each other's setting.

use std::sync::Arc;

use gpu_sim::{DeviceSpec, FaultConfig};
use graph_sparse::{gen, Csr, DenseMatrix};
use hc_core::{
    CudaSpmm, HcSpmm, PlanSpec, ResiliencePolicy, SpmmKernel, StraightforwardHybrid, TensorSpmm,
};
use hc_serve::{BatchDriver, CacheStats, Outcome, Request};

#[test]
fn kernel_outputs_bit_identical_across_thread_counts() {
    let dev = DeviceSpec::rtx3090();
    let graphs = [
        ("community", gen::community(1024, 8_000, 32, 0.9, 1)),
        ("molecules", gen::molecules(2_048, 5_000, 2)),
        ("erdos_renyi", gen::erdos_renyi(2_048, 12_000, 3)),
    ];
    let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
        (
            "straightforward",
            Box::new(StraightforwardHybrid::default()),
        ),
        ("cuda", Box::new(CudaSpmm::optimized())),
        ("tensor", Box::new(TensorSpmm::optimized())),
        ("hybrid", Box::new(HcSpmm::default())),
    ];

    let saved = hc_parallel::thread_override();
    for (graph_name, a) in &graphs {
        let x = DenseMatrix::random_features(a.nrows, 32, 7);
        for (family, kernel) in &kernels {
            hc_parallel::set_threads(1);
            let serial = kernel.spmm(a, &x, &dev).z;
            for threads in [2, 8] {
                hc_parallel::set_threads(threads);
                let parallel = kernel.spmm(a, &x, &dev).z;
                assert_eq!(
                    serial, parallel,
                    "{family} on {graph_name}: output at {threads} threads \
                     differs from single-thread output"
                );
            }
        }
    }

    // The batched serving driver inherits the same guarantee: a request
    // stream served through the plan cache yields bit-identical outputs,
    // hit flags and cache counters at any worker count. Eviction pressure
    // included — a tight budget exercises LRU victim selection, which must
    // also be thread-count-independent.
    let serve_graphs: Vec<Arc<Csr>> = vec![
        Arc::new(gen::erdos_renyi(512, 3_000, 21)),
        Arc::new(gen::community(512, 4_000, 16, 0.9, 22)),
        Arc::new(gen::molecules(600, 1_400, 23)),
    ];
    // a, b, a, c, c, b, a, …: repeats so the cache sees hits.
    let requests: Vec<Request> = [0usize, 1, 0, 2, 2, 1, 0, 1, 2, 0]
        .iter()
        .enumerate()
        .map(|(i, &g)| Request {
            graph: Arc::clone(&serve_graphs[g]),
            features: DenseMatrix::random_features(serve_graphs[g].ncols, 16, i as u64),
        })
        .collect();
    let serve_batch = |threads: usize, budget: u64| -> (Vec<DenseMatrix>, Vec<bool>, CacheStats) {
        hc_parallel::set_threads(threads);
        let mut driver = BatchDriver::new(budget, PlanSpec::hybrid());
        let responses = driver.run(&requests, &dev);
        (
            responses
                .iter()
                .map(|r| r.z().expect("faults off: every request serves").clone())
                .collect(),
            responses.iter().map(|r| r.hit).collect(),
            driver.stats(),
        )
    };
    // Second budget fits roughly one plan, forcing evictions mid-stream.
    let one_plan =
        hc_core::Plan::prepare(&serve_graphs[0], PlanSpec::hybrid(), &dev).approx_bytes();
    for budget in [u64::MAX, one_plan + one_plan / 2] {
        let (z1, hits1, stats1) = serve_batch(1, budget);
        assert!(hits1.iter().any(|&h| h), "request mix must produce hits");
        for threads in [2, 8] {
            let (z, hits, stats) = serve_batch(threads, budget);
            assert_eq!(
                z1, z,
                "batched driver outputs at {threads} threads differ from single-thread \
                 (budget {budget})"
            );
            assert_eq!(hits1, hits, "hit pattern changed with thread count");
            assert_eq!(stats1, stats, "cache counters changed with thread count");
        }
    }
    // Fault schedules must be thread-count-deterministic too: decisions
    // are a pure function of (seed, launch index) and launches happen on
    // the driving thread only, so the same chaos batch produces identical
    // outcomes, retry counts, fallback choices, wasted time and cache
    // counters (quarantines included) at 1, 2 and 8 threads.
    let chaos_batch = |threads: usize, seed: u64, rate: f64| {
        hc_parallel::set_threads(threads);
        let policy = ResiliencePolicy {
            faults: FaultConfig::uniform(seed, rate),
            ..Default::default()
        };
        let mut driver = BatchDriver::with_policy(u64::MAX, PlanSpec::hybrid(), policy);
        let responses = driver.run(&requests, &dev);
        let outcomes: Vec<Outcome> = responses.iter().map(|r| r.outcome.clone()).collect();
        let wasted: Vec<f64> = responses.iter().map(|r| r.wasted_sim_ms).collect();
        let hits: Vec<bool> = responses.iter().map(|r| r.hit).collect();
        (outcomes, wasted, hits, driver.stats())
    };
    // Churn: the incremental re-plan path is thread-count-deterministic
    // too. Patching a plan and executing it must produce the same bit
    // pattern — outputs, fingerprints and simulated times — at 1, 2 and
    // 8 threads, and always match a from-scratch prepare on the mutated
    // graph.
    let churn_base = &serve_graphs[0];
    let (dr, dc) = (0..churn_base.nrows)
        .find_map(|r| churn_base.row_cols(r).first().map(|&c| (r as u32, c)))
        .expect("generated graph has edges");
    let delta = graph_sparse::DeltaCsr::new(
        churn_base.nrows,
        churn_base.ncols,
        vec![((dr + 1) % churn_base.nrows as u32, dc, 1.25)],
        vec![(dr, dc)],
    )
    .expect("one insert, one delete: valid churn delta");
    let mutated = match delta.apply(churn_base) {
        Ok(m) => m,
        Err(e) => panic!("delta applies to its base: {e}"),
    };
    let xm = DenseMatrix::random_features(mutated.ncols, 16, 77);
    let churn_at = |threads: usize| {
        hc_parallel::set_threads(threads);
        let base = hc_core::Plan::prepare(churn_base, PlanSpec::hybrid(), &dev);
        let patched = match base.patch(churn_base, &delta, &dev) {
            Ok(p) => p,
            Err(e) => panic!("valid delta patches: {e}"),
        };
        let out = patched.execute(&mutated, &xm, &dev);
        (
            patched.fingerprint,
            out.z,
            out.run.time_ms.to_bits(),
            patched.sim_prepare_ms().to_bits(),
        )
    };
    let serial_churn = churn_at(1);
    assert_eq!(
        serial_churn.0,
        graph_sparse::StructureFingerprint::of(&mutated),
        "patched fingerprint must key the mutated structure"
    );
    for threads in [2, 8] {
        assert_eq!(
            serial_churn,
            churn_at(threads),
            "patched plan at {threads} threads differs from single-thread"
        );
    }

    for (seed, rate) in [(17u64, 0.3f64), (99, 0.8)] {
        let (o1, w1, h1, s1) = chaos_batch(1, seed, rate);
        assert!(
            o1.iter().any(|o| !matches!(o, Outcome::Ok(_))),
            "rate {rate} must degrade or fail something for the test to bite"
        );
        for threads in [2, 8] {
            let (o, w, h, s) = chaos_batch(threads, seed, rate);
            assert_eq!(
                o1, o,
                "chaos outcomes at {threads} threads differ from single-thread (seed {seed})"
            );
            assert_eq!(w1, w, "wasted-time accounting changed with thread count");
            assert_eq!(h1, h, "hit pattern changed with thread count under faults");
            assert_eq!(
                s1, s,
                "cache counters changed with thread count under faults"
            );
        }
    }
    hc_parallel::set_threads(saved);
}
