//! Parallel determinism: every kernel family must produce bit-identical
//! output at any worker-thread count.
//!
//! The engine parallelizes over *indexed slots* (rows or row-windows):
//! each slot is computed by exactly one worker with the same per-slot
//! arithmetic order as the serial code, and reductions fold in index
//! order on the calling thread. Threads race only for WHICH slot they
//! compute next, never over shared accumulators — so the result is the
//! same bit pattern at 1, 2, or 8 threads, and this test pins that down
//! for all four kernel families on structurally different graphs.
//!
//! Single `#[test]` on purpose: the thread override is process-global, so
//! concurrent tests in one binary would trample each other's setting.

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DenseMatrix};
use hc_core::{CudaSpmm, HcSpmm, SpmmKernel, StraightforwardHybrid, TensorSpmm};

#[test]
fn kernel_outputs_bit_identical_across_thread_counts() {
    let dev = DeviceSpec::rtx3090();
    let graphs = [
        ("community", gen::community(1024, 8_000, 32, 0.9, 1)),
        ("molecules", gen::molecules(2_048, 5_000, 2)),
        ("erdos_renyi", gen::erdos_renyi(2_048, 12_000, 3)),
    ];
    let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
        (
            "straightforward",
            Box::new(StraightforwardHybrid::default()),
        ),
        ("cuda", Box::new(CudaSpmm::optimized())),
        ("tensor", Box::new(TensorSpmm::optimized())),
        ("hybrid", Box::new(HcSpmm::default())),
    ];

    let saved = hc_parallel::thread_override();
    for (graph_name, a) in &graphs {
        let x = DenseMatrix::random_features(a.nrows, 32, 7);
        for (family, kernel) in &kernels {
            hc_parallel::set_threads(1);
            let serial = kernel.spmm(a, &x, &dev).z;
            for threads in [2, 8] {
                hc_parallel::set_threads(threads);
                let parallel = kernel.spmm(a, &x, &dev).z;
                assert_eq!(
                    serial, parallel,
                    "{family} on {graph_name}: output at {threads} threads \
                     differs from single-thread output"
                );
            }
        }
    }
    hc_parallel::set_threads(saved);
}
