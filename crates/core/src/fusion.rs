//! Kernel fusion of Aggregation + Update (§V-A).
//!
//! GNN frameworks launch Aggregation (SpMM) and Update (GEMM) as separate
//! kernels: the aggregated rows are written to global memory by one kernel
//! and immediately read back by the next, and each launch costs ≈0.03 ms.
//! When Update directly follows Aggregation — the backward pass of GCN and
//! the forward pass of GIN — HC-SpMM fuses them: each thread block keeps its
//! row window's aggregation result in shared memory and multiplies it by the
//! weight matrix with Tensor cores before storing only the final output.
//!
//! This module provides the fused kernel, the unfused two-launch comparator
//! (Table VI), and the dense-GEMM cost model the Update phase uses
//! everywhere (cuBLAS-style Tensor-core tiling).

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};

use crate::kernels::hybrid::HcSpmm;
use crate::preprocess::Preprocessed;
use crate::selector::CoreChoice;

/// Block costs for a dense `m×k · k×n` GEMM on Tensor cores (64×64 output
/// tiles, ideal L2 reuse — the cuBLAS model used for every Update phase).
pub fn gemm_block_costs(m: usize, n: usize, k: usize, dev: &DeviceSpec) -> Vec<BlockCost> {
    if m == 0 || n == 0 || k == 0 {
        return Vec::new();
    }
    let tiles_m = m.div_ceil(64);
    let tiles_n = n.div_ceil(64);
    // Split-K: tall reductions are divided across blocks (with a cheap
    // final reduction, folded into the store traffic below), as cuBLAS does
    // — otherwise a skinny `m×n` with huge `k` would run on a handful of
    // SMs.
    let split_k = k.div_ceil(4096).max(1);
    let blocks = tiles_m * tiles_n * split_k;
    let k_per_block = k.div_ceil(split_k);
    // Ideal-reuse DRAM traffic for the whole kernel, split evenly.
    let total_bytes_loaded = (m * k + k * n) as u64 * 4;
    let total_bytes_stored = (m * n) as u64 * 4 * split_k as u64;
    let mut out = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let mut b = BlockCost {
            warps: 8,
            ..Default::default()
        };
        // 4×4 warp tiles of 16×16, each consuming its K share in steps of 8.
        b.wmma_issues = (16 * k_per_block.div_ceil(8)) as u64;
        b.shared.loads += b.wmma_issues * 2;
        b.dram.bytes_loaded = total_bytes_loaded / blocks as u64;
        b.dram.bytes_stored = total_bytes_stored / blocks as u64;
        b.dram.transactions = coalesced_transactions(
            b.dram.bytes_loaded + b.dram.bytes_stored,
            dev.transaction_bytes,
        );
        out.push(b);
    }
    out
}

/// Simulate a standalone GEMM kernel launch (the Update phase).
pub fn gemm_run(m: usize, n: usize, k: usize, dev: &DeviceSpec) -> KernelRun {
    dev.execute(&gemm_block_costs(m, n, k, dev))
}

/// Result of a fused or unfused Aggregation+Update pass.
#[derive(Debug, Clone)]
pub struct AggUpdateResult {
    /// `(Ā · G) · W`, computed numerically.
    pub out: DenseMatrix,
    /// The intermediate aggregation `Ā · G` (kept for gradient computation;
    /// in the fused kernel it only ever lived in shared memory).
    pub aggregated: DenseMatrix,
    /// Simulated execution record.
    pub run: KernelRun,
}

/// Fused Aggregation+Update: one launch; per-window SpMM into shared memory,
/// then an in-block Tensor-core multiply by `w`.
pub fn fused_agg_update(
    hc: &HcSpmm,
    pre: &Preprocessed,
    a: &Csr,
    g: &DenseMatrix,
    w: &DenseMatrix,
    dev: &DeviceSpec,
) -> AggUpdateResult {
    assert_eq!(a.ncols, g.rows);
    assert_eq!(g.cols, w.rows);
    let (d, h) = (w.rows, w.cols);

    let mut blocks = Vec::with_capacity(pre.partition.len() + 1);
    for (win, choice) in pre.partition.windows.iter().zip(&pre.choices) {
        if win.is_empty() {
            continue;
        }
        let mut b = match choice {
            CoreChoice::Cuda => {
                hc.cuda
                    .window_block_cost(win.nnz, win.nnz_cols(), win.rows, d, dev)
            }
            CoreChoice::Tensor => {
                hc.tensor
                    .window_block_cost(win.nnz, win.nnz_cols(), win.rows, d, dev)
            }
        };
        // The aggregation result stays in shared memory instead of global:
        // remove the Z store, add shared traffic for it.
        let z_bytes = (win.rows * d) as u64 * 4;
        b.dram.bytes_stored = b.dram.bytes_stored.saturating_sub(z_bytes);
        b.dram.transactions = b.dram.transactions.saturating_sub(
            win.rows as u64 * coalesced_transactions(d as u64 * 4, dev.transaction_bytes),
        );
        b.shared.stores += z_bytes.div_ceil(dev.warp_size as u64 * 4);
        // In-block Update: 16×d · d×h on Tensor cores. W is read through the
        // L2 (bytes charged once, below); fragment loads come from shared.
        let wmma = (win.rows.div_ceil(16) * h.div_ceil(16) * d.div_ceil(8)) as u64;
        b.wmma_issues += wmma;
        b.shared.loads += wmma * 2;
        b.dram.transactions += coalesced_transactions((d * h) as u64 * 4, dev.transaction_bytes);
        // Final output store.
        b.dram.bytes_stored += (win.rows * h) as u64 * 4;
        b.dram.transactions +=
            win.rows as u64 * coalesced_transactions(h as u64 * 4, dev.transaction_bytes);
        blocks.push(b);
    }
    // W's DRAM traffic is paid once (it stays L2-resident across blocks).
    let mut wblock = BlockCost {
        warps: 1,
        ..Default::default()
    };
    wblock.dram.bytes_loaded = (d * h) as u64 * 4;
    blocks.push(wblock);

    let run = dev.execute(&blocks);
    let aggregated = hc.numeric(pre, a, g);
    let out = aggregated.matmul(w);
    AggUpdateResult {
        out,
        aggregated,
        run,
    }
}

/// The unfused comparator: Aggregation kernel (Z to global memory) followed
/// by a separate Update GEMM (Z read back) — two launches.
pub fn unfused_agg_update(
    hc: &HcSpmm,
    pre: &Preprocessed,
    a: &Csr,
    g: &DenseMatrix,
    w: &DenseMatrix,
    dev: &DeviceSpec,
) -> AggUpdateResult {
    let spmm = hc.spmm_preprocessed(pre, a, g, dev);
    let gemm = gemm_run(a.nrows, w.cols, w.rows, dev);
    let out = spmm.z.matmul(w);
    AggUpdateResult {
        out,
        aggregated: spmm.z,
        run: spmm.run.then(&gemm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::Selector;
    use graph_sparse::gen;

    fn setup(n: usize, d: usize, h: usize) -> (Csr, DenseMatrix, DenseMatrix) {
        let a = gen::community(n, n * 6, n / 32, 0.9, 11);
        let g = DenseMatrix::random_features(n, d, 12);
        let w = DenseMatrix::random_features(d, h, 13);
        (a, g, w)
    }

    #[test]
    fn fused_equals_unfused_numerically() {
        let dev = DeviceSpec::rtx3090();
        let (a, g, w) = setup(512, 32, 16);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, &dev);
        let f = fused_agg_update(&hc, &pre, &a, &g, &w, &dev);
        let u = unfused_agg_update(&hc, &pre, &a, &g, &w, &dev);
        assert_eq!(f.out, u.out);
        assert_eq!(f.aggregated, u.aggregated);
    }

    #[test]
    fn fusion_is_faster_and_saves_a_launch() {
        let dev = DeviceSpec::rtx3090();
        let (a, g, w) = setup(2048, 64, 32);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, &dev);
        let f = fused_agg_update(&hc, &pre, &a, &g, &w, &dev);
        let u = unfused_agg_update(&hc, &pre, &a, &g, &w, &dev);
        assert!(
            f.run.time_ms < u.run.time_ms,
            "fused {} !< unfused {}",
            f.run.time_ms,
            u.run.time_ms
        );
        assert_eq!(f.run.profile.launches, 1);
        assert_eq!(u.run.profile.launches, 2);
        // Fusion removes the Z round trip from DRAM.
        assert!(f.run.profile.dram_bytes() < u.run.profile.dram_bytes());
    }

    #[test]
    fn gemm_numeric_vs_cost_shapes() {
        let dev = DeviceSpec::rtx3090();
        let small = gemm_run(64, 64, 64, &dev);
        let big = gemm_run(512, 512, 512, &dev);
        assert!(big.time_ms > small.time_ms);
        assert!(gemm_block_costs(0, 10, 10, &dev).is_empty());
    }

    #[test]
    fn fused_preserves_exactness_with_cuda_only_selector() {
        // Force every window onto CUDA cores: fused output must be exact.
        let dev = DeviceSpec::rtx3090();
        let (a, g, w) = setup(256, 32, 8);
        let hc = HcSpmm {
            selector: Selector {
                w1: 0.0,
                w2: 0.0,
                b: 1.0,
            },
            ..HcSpmm::default()
        };
        let pre = hc.preprocess(&a, &dev);
        assert!(pre.choices.iter().all(|c| *c == CoreChoice::Cuda));
        let f = fused_agg_update(&hc, &pre, &a, &g, &w, &dev);
        let want = a.spmm_reference(&g).matmul(&w);
        assert_eq!(f.out, want);
    }
}
