//! # hc-core — the HC-SpMM hybrid-core SpMM kernel (the paper's contribution)
//!
//! Implements §IV and §V of *HC-SpMM: Accelerating Sparse Matrix-Matrix
//! Multiplication for Graphs with Hybrid GPU Cores* (ICDE 2025):
//!
//! * [`kernels::cuda`] — SpMM on CUDA cores (Algorithm 1) with the
//!   generalization and shared-memory optimizations of Algorithm 3;
//! * [`kernels::tensor`] — SpMM on Tensor cores (Algorithm 2) with the
//!   cooperative data-loading strategy of Algorithm 4 / Fig. 6;
//! * [`selector`] — the logistic-regression core selector and its four-step
//!   training pipeline (§IV-C);
//! * [`kernels::hybrid`] — the hybrid kernel: row windows partitioned
//!   (§IV-A), classified, and dispatched to the right cores in one launch;
//! * [`preprocess`] — GPU-side preprocessing (condensing + classification)
//!   whose overhead Table XI accounts;
//! * [`loa`] — the LOA graph-layout reorganization algorithm
//!   (Algorithms 5/6, §V-B);
//! * [`fusion`] — the Aggregation+Update kernel-fusion strategy (§V-A);
//! * [`sanitize`] — compute-sanitizer-style checking of every kernel
//!   family's window traces against the costs it bills;
//! * [`resilient`] — typed errors, bounded retry, kernel-family fallback
//!   chains and output validation over prepared [`Plan`]s;
//! * [`workspace`] — the per-plan reusable execution arena (cached block
//!   costs, recycled LOA staging buffers) that keeps the serving hot path
//!   allocation-free per request.
//!
//! Kernels compute real `f32` numerics on the CPU while charging simulated
//! GPU time through the `gpu-sim` substrate; see that crate's docs.

#![warn(missing_docs)]

pub mod chunked;
pub mod features;
pub mod fusion;
pub mod kernels;
pub mod loa;
pub mod plan;
pub mod preprocess;
pub mod resilient;
pub mod sanitize;
pub mod selector;
pub mod workspace;

pub use features::WindowFeatures;
pub use kernels::cuda::CudaSpmm;
pub use kernels::hybrid::HcSpmm;
pub use kernels::straightforward::StraightforwardHybrid;
pub use kernels::tensor::TensorSpmm;
pub use kernels::{SpmmKernel, SpmmResult};
pub use loa::{Loa, LoaBrute, LoaReport};
pub use plan::{LoaLayout, PatchError, Plan, PlanSpec};
pub use preprocess::{
    preprocess_oracle, window_preprocess_cost, window_preprocess_cost_with, Preprocessed,
};
pub use resilient::{
    execute_resilient, fallback_chain, FallbackStep, HcError, OverloadReason, ResiliencePolicy,
    ResilientRun, Validation,
};
pub use sanitize::{
    conformance_family, sanitize_family, sanitize_graph, FamilyReport, KernelFamily, SampleSpec,
};
pub use selector::{CoreChoice, SelectionPolicy, Selector};
pub use workspace::{Workspace, WorkspaceStats};
