//! Reusable execution plans: preprocessing artifacts packaged for caching.
//!
//! HC-SpMM's preprocessing (window condensing, selector classification,
//! optionally the LOA relayout) costs ≈13× one SpMM execution (Appendix F)
//! and is worth paying only when amortized over many invocations — GNN
//! epochs in the paper, repeated serving traffic here. A [`Plan`] is the
//! complete set of those artifacts for one graph *structure* and one
//! kernel configuration: prepared once, executed against any request whose
//! graph shares the structure (values are free to differ — the plan gathers
//! them per request).
//!
//! Everything a plan stores is a pure function of the CSR structure, which
//! is why the serving layer can key plans by [`StructureFingerprint`].

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use gpu_sim::DeviceSpec;
use graph_sparse::{
    Csr, DeltaCsr, DeltaError, DenseMatrix, FingerprintState, RowWindow, StructureFingerprint,
};

use crate::features::WindowFeatures;
use crate::kernels::SpmmResult;
use crate::loa::Loa;
use crate::preprocess::{window_preprocess_cost, Preprocessed};
use crate::sanitize::KernelFamily;
use crate::workspace::{Workspace, WorkspaceStats};
use crate::{HcSpmm, StraightforwardHybrid};

/// What to prepare: the kernel family that will execute requests and
/// whether to run the LOA relayout first (square matrices only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    /// Kernel family executing the plan's requests.
    pub family: KernelFamily,
    /// Run LOA (Algorithms 5/6) at prepare time and execute against the
    /// optimized layout; results are mapped back to the original vertex
    /// order.
    pub use_loa: bool,
}

impl PlanSpec {
    /// The deployed configuration: the hybrid kernel, no relayout.
    pub fn hybrid() -> PlanSpec {
        PlanSpec {
            family: KernelFamily::Hybrid,
            use_loa: false,
        }
    }
}

/// Why [`Plan::patch`] refused to derive a patched plan. Typed, never a
/// panic: the serving layer maps these to a full re-prepare or a request
/// failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PatchError {
    /// The offered base graph does not have the structure this plan was
    /// prepared from.
    BaseMismatch,
    /// The delta is malformed or disagrees with the base graph.
    Delta(DeltaError),
    /// The plan bakes an LOA permutation of the whole structure; patching
    /// is not supported, re-prepare instead.
    LoaPlan,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::BaseMismatch => {
                write!(f, "base graph structure does not match the plan's")
            }
            PatchError::Delta(e) => write!(f, "invalid delta: {e}"),
            PatchError::LoaPlan => write!(f, "LOA plans cannot be patched"),
        }
    }
}

impl std::error::Error for PatchError {}

/// LOA artifacts baked into a plan: the permuted structure plus the maps
/// needed to route per-request values in and results back out.
#[derive(Debug, Clone)]
pub struct LoaLayout {
    /// New vertex order, `perm[new_id] = old_id` (as [`crate::LoaReport`]).
    pub perm: Vec<u32>,
    /// Permuted adjacency *structure*; its values are placeholders that
    /// [`Plan::execute`] overwrites from the request graph via
    /// [`val_gather`](LoaLayout::val_gather).
    pub structure: Csr,
    /// Entry map: permuted entry `i` takes the request graph's value at
    /// original entry `val_gather[i]`.
    pub val_gather: Vec<u32>,
    /// Modeled host seconds the relayout cost (Fig. 16's overhead axis).
    pub seconds: f64,
}

/// A prepared, structure-keyed execution plan: condensed row windows,
/// per-window core choices, optional LOA layout, and the kernel
/// configuration — everything a request needs short of its values.
///
/// ```
/// use gpu_sim::DeviceSpec;
/// use graph_sparse::{gen, DenseMatrix};
/// use hc_core::{Plan, PlanSpec};
///
/// let dev = DeviceSpec::rtx3090();
/// let graph = gen::community(256, 1_500, 8, 0.9, 1);
/// let x = DenseMatrix::random_features(256, 32, 2);
///
/// let plan = Plan::prepare(&graph, PlanSpec::hybrid(), &dev);
/// let out = plan.execute(&graph, &x, &dev); // reusable across requests
/// assert!(graph.spmm_reference(&x).max_abs_diff(&out.z) < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Plan {
    /// The configuration this plan was prepared for.
    pub spec: PlanSpec,
    /// Structure digest of the graph the plan was prepared from; requests
    /// must match it.
    pub fingerprint: StructureFingerprint,
    /// The digest's per-row lane checkpoints, persisted so
    /// [`Plan::patch`] can recompute the fingerprint of a mutated graph
    /// from the first dirty row instead of re-hashing the whole structure.
    pub fingerprint_state: FingerprintState,
    /// Hybrid kernel configuration (also carries the CUDA and Tensor paths
    /// the single-core families execute through).
    pub hc: HcSpmm,
    /// Per-tile kernel configuration (the `Straightforward` family).
    pub sf: StraightforwardHybrid,
    /// Condensed windows + selector choices over the (possibly permuted)
    /// structure.
    pub pre: Preprocessed,
    /// LOA artifacts when [`PlanSpec::use_loa`] was set.
    pub loa: Option<LoaLayout>,
    /// Host wall-clock milliseconds the prepare step took (the serving
    /// layer's amortization numerator).
    pub prepare_wall_ms: f64,
    /// Reusable execution arena: cached per-window block costs and
    /// recycled LOA staging buffers. Interior-mutable, so a shared
    /// (`Arc`ed) plan amortizes across requests; cloning the plan starts
    /// a cold workspace.
    pub workspace: Workspace,
}

impl Plan {
    /// Prepare a plan for `a` with the default kernel configurations.
    pub fn prepare(a: &Csr, spec: PlanSpec, dev: &DeviceSpec) -> Plan {
        Plan::prepare_with(HcSpmm::default(), a, spec, dev)
    }

    /// Prepare with an explicit hybrid-kernel configuration (custom
    /// precision or selector).
    pub fn prepare_with(hc: HcSpmm, a: &Csr, spec: PlanSpec, dev: &DeviceSpec) -> Plan {
        let t0 = Instant::now();
        let fingerprint_state = FingerprintState::of(a);
        let fingerprint = fingerprint_state.fingerprint();
        let loa = spec.use_loa.then(|| {
            let rep = Loa::default().run(a);
            let structure = a.permute_symmetric(&rep.perm);
            let val_gather = entry_gather(a, &structure, &rep.perm);
            LoaLayout {
                perm: rep.perm,
                structure,
                val_gather,
                seconds: rep.seconds,
            }
        });
        let pre = match &loa {
            Some(l) => hc.preprocess(&l.structure, dev),
            None => hc.preprocess(a, dev),
        };
        Plan {
            spec,
            fingerprint,
            fingerprint_state,
            hc,
            sf: StraightforwardHybrid::default(),
            pre,
            loa,
            prepare_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            workspace: Workspace::default(),
        }
    }

    /// Derive the plan for `base` mutated by `delta`, touching only what
    /// the delta dirtied. `base` must be the graph this plan was prepared
    /// from (checked against the fingerprint).
    ///
    /// Work done, all proportional to the dirty suffix / dirty windows
    /// rather than the graph:
    ///
    /// * the fingerprint resumes from the per-row lane checkpoint before
    ///   the first dirty row ([`FingerprintState::update`]);
    /// * only windows containing a mutated row are re-condensed
    ///   ([`RowWindow::build`]) and re-classified by the selector —
    ///   windows the delta missed keep their condensed arrays and core
    ///   choices verbatim (window boundaries are row-aligned and the
    ///   shape is fixed, so untouched windows' contents cannot change);
    /// * the simulated preprocessing bill
    ///   ([`sim_prepare_ms`](Plan::sim_prepare_ms)) covers the dirty
    ///   windows only — the sublinear patch cost the churn benchmark
    ///   gates on;
    /// * cached block-cost vectors for this device are *spliced*: clean
    ///   windows' entries are copied from the old workspace, dirty
    ///   windows' entries recomputed, and the result seeded into the new
    ///   plan's workspace (eviction order preserved, oldest first).
    ///
    /// The patched plan is bit-identical in every request-visible artifact
    /// (partition, choices, block costs, SpMM output and execution timing)
    /// to `Plan::prepare` on the post-mutation graph; the differential
    /// suite in `crates/core/tests/plan_patch_differential.rs` pins that.
    /// LOA plans bake a whole-structure permutation and are not patchable
    /// — callers fall back to a full prepare.
    pub fn patch(
        &self,
        base: &Csr,
        delta: &DeltaCsr,
        dev: &DeviceSpec,
    ) -> Result<Plan, PatchError> {
        let t0 = Instant::now();
        if self.loa.is_some() {
            return Err(PatchError::LoaPlan);
        }
        if StructureFingerprint::of(base) != self.fingerprint {
            return Err(PatchError::BaseMismatch);
        }
        let updated = delta.apply(base).map_err(PatchError::Delta)?;
        let fingerprint_state = match delta.first_dirty_row() {
            Some(d) => self.fingerprint_state.update(&updated, d),
            // Empty delta: nothing changed, keep the checkpoints.
            None => self.fingerprint_state.clone(),
        };

        let wr = self.pre.partition.window_rows;
        let dirty: BTreeSet<usize> = delta.dirty_rows().iter().map(|&r| r / wr).collect();

        // Re-condense + re-classify the dirty windows; copy the rest.
        let mut windows = self.pre.partition.windows.clone();
        let mut choices = self.pre.choices.clone();
        let mut patch_blocks = Vec::with_capacity(dirty.len());
        for &wi in &dirty {
            let start = wi * wr;
            let w = RowWindow::build(&updated, start, wr.min(updated.nrows - start));
            choices[wi] = self.hc.selector.choose(&WindowFeatures::of(&w));
            if let Some(b) = window_preprocess_cost(&w, dev) {
                patch_blocks.push(b);
            }
            windows[wi] = w;
        }
        let partition = graph_sparse::RowWindowPartition {
            windows,
            window_rows: wr,
        };
        // The patch's simulated preprocessing bill: condensing +
        // classification for the dirty windows only.
        let run = dev.execute(&patch_blocks);

        // Splice the old workspace's cached block-cost vectors: every
        // family emits exactly one BlockCost per non-empty window in
        // window order, so clean windows' entries copy across by their
        // rank among non-empty windows and dirty windows' entries are
        // recomputed per family. Only vectors for this device can be
        // recomputed; others are dropped (they rebuild lazily).
        let old_rank = non_empty_ranks(&self.pre.partition);
        let spliced: Vec<_> = self
            .workspace
            .snapshot_costs()
            .into_iter()
            .filter(|(key, blocks)| {
                key.dev == dev.kind && blocks.len() == old_rank.iter().flatten().count()
            })
            .map(|(key, old_blocks)| {
                let mut blocks = Vec::with_capacity(old_blocks.len());
                for (wi, w) in partition.windows.iter().enumerate() {
                    if w.is_empty() {
                        continue;
                    }
                    if dirty.contains(&wi) {
                        blocks.push(match key.family {
                            KernelFamily::Straightforward => self.sf.window_cost(w, key.dim, dev),
                            KernelFamily::Cuda => self.hc.cuda.window_block_cost(
                                w.nnz,
                                w.nnz_cols(),
                                w.rows,
                                key.dim,
                                dev,
                            ),
                            KernelFamily::Tensor => self.hc.tensor.window_block_cost(
                                w.nnz,
                                w.nnz_cols(),
                                w.rows,
                                key.dim,
                                dev,
                            ),
                            KernelFamily::Hybrid => {
                                self.hc.window_cost(w, choices[wi], key.dim, dev)
                            }
                        });
                    } else {
                        let rank = old_rank[wi].expect("clean window keeps its nnz status");
                        blocks.push(old_blocks[rank]);
                    }
                }
                (key, std::sync::Arc::new(blocks))
            })
            .collect();
        let workspace = Workspace::default();
        workspace.seed_costs(spliced);

        Ok(Plan {
            spec: self.spec,
            fingerprint: fingerprint_state.fingerprint(),
            fingerprint_state,
            hc: self.hc,
            sf: self.sf,
            pre: Preprocessed {
                partition,
                choices,
                run,
            },
            loa: None,
            prepare_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            workspace,
        })
    }

    /// The workspace's traffic counters (block-cost cache hits, scratch
    /// buffer reuse) — the serving layer's per-request allocation metric.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Simulated milliseconds the prepare step would cost on the device:
    /// the preprocessing kernel plus the (host-side) LOA run. This is the
    /// deterministic per-request penalty a cold path pays and a cache hit
    /// skips.
    pub fn sim_prepare_ms(&self) -> f64 {
        self.pre.run.time_ms + self.loa.as_ref().map_or(0.0, |l| l.seconds * 1e3)
    }

    /// Execute the plan against a request. `a` must share the prepared
    /// structure (checked against [`Plan::fingerprint`]); its values are
    /// the request's own. Output is bit-identical to executing a freshly
    /// prepared plan of the same spec — and, with `use_loa` off, to the
    /// kernel family's direct `spmm` — at any thread count.
    pub fn execute(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        assert_eq!(
            StructureFingerprint::of(a),
            self.fingerprint,
            "request graph structure does not match the plan's"
        );
        self.execute_as(self.spec.family, a, x, dev)
    }

    /// Execute the plan with an explicit kernel family — the fallback hook
    /// the resilient layer uses to retry a prepared plan on a simpler
    /// family without re-preparing. The prepared partition is shared by
    /// all families, so any family can execute any plan. No fingerprint
    /// check: callers on this path have already validated the request (see
    /// [`crate::resilient::execute_resilient`]).
    pub fn execute_as(
        &self,
        family: KernelFamily,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        match &self.loa {
            None => self.execute_layout(family, a, x, dev),
            Some(l) => {
                // Route the request's values into the permuted structure,
                // permute the feature rows to match, then map the output
                // rows back to the original vertex order. All staging
                // buffers come from the workspace and are fully
                // overwritten before use, so reuse is bit-identical to
                // fresh allocation.
                let mut s = self.workspace.checkout();
                let mut ap = s.ap.take().unwrap_or_else(|| l.structure.clone());
                for (slot, &src) in ap.vals.iter_mut().zip(&l.val_gather) {
                    *slot = a.vals[src as usize];
                }
                let mut xp_data = std::mem::take(&mut s.xp);
                xp_data.clear();
                xp_data.reserve(x.rows * x.cols);
                for new in 0..x.rows {
                    xp_data.extend_from_slice(x.row(l.perm[new] as usize));
                }
                let xp = DenseMatrix {
                    rows: x.rows,
                    cols: x.cols,
                    data: xp_data,
                };
                let mut r = self.execute_layout(family, &ap, &xp, dev);
                let mut zdata = std::mem::take(&mut s.zret);
                zdata.clear();
                zdata.resize(r.z.rows * r.z.cols, 0.0);
                let cols = r.z.cols;
                for (new, &old) in l.perm.iter().enumerate() {
                    zdata[old as usize * cols..][..cols].copy_from_slice(r.z.row(new));
                }
                // Hand the result its remapped buffer; recycle the
                // intermediate's storage (and the other stagers) for the
                // next request on this plan.
                s.zret = std::mem::replace(&mut r.z.data, zdata);
                s.xp = xp.data;
                s.ap = Some(ap);
                self.workspace.check_in(s);
                r
            }
        }
    }

    /// Dispatch to a kernel family against the prepared partition. The
    /// per-window block costs are a pure function of (structure, family,
    /// feature width, device), so they come from the workspace cache —
    /// built on the first request, reused after.
    fn execute_layout(
        &self,
        family: KernelFamily,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let blocks = self
            .workspace
            .block_costs(family, x.cols, dev.kind, || match family {
                KernelFamily::Straightforward => {
                    self.sf
                        .partition_block_costs(&self.pre.partition, a, x.cols, dev)
                }
                KernelFamily::Cuda => {
                    self.hc
                        .cuda
                        .partition_block_costs(&self.pre.partition, x.cols, dev)
                }
                KernelFamily::Tensor => {
                    self.hc
                        .tensor
                        .partition_block_costs(&self.pre.partition, x.cols, dev)
                }
                KernelFamily::Hybrid => self.hc.block_costs(&self.pre, x.cols, dev),
            });
        let run = dev.execute(&blocks);
        let z = match family {
            KernelFamily::Straightforward => self.sf.partition_numeric(&self.pre.partition, a, x),
            KernelFamily::Cuda => self.hc.cuda.numeric(a, x),
            KernelFamily::Tensor => self.hc.tensor.partition_numeric(&self.pre.partition, a, x),
            KernelFamily::Hybrid => self.hc.numeric(&self.pre, a, x),
        };
        SpmmResult { z, run }
    }

    /// Resident bytes of the plan's owned artifacts — what a byte-budgeted
    /// cache charges for keeping it. Recursive and honest: each window is
    /// charged its struct size plus the actual heap content of its
    /// compressed tile metadata (column stream + bitmaps, by length, so
    /// patched and fresh plans account identically); the choice vector and
    /// the LOA layout are charged the same way. Fixed-size plan fields are
    /// ignored.
    pub fn approx_bytes(&self) -> u64 {
        let window_fixed = std::mem::size_of::<graph_sparse::RowWindow>() as u64;
        let windows: u64 = self
            .pre
            .partition
            .windows
            .iter()
            .map(|w| window_fixed + w.meta.heap_bytes() as u64)
            .sum();
        let choices = self.pre.choices.len() as u64;
        let loa = self.loa.as_ref().map_or(0, |l| {
            l.structure.byte_size() + 4 * (l.perm.len() + l.val_gather.len()) as u64
        });
        windows + choices + loa + self.fingerprint_state.checkpoint_bytes()
    }
}

/// For each window, its rank among the partition's non-empty windows (the
/// index its `BlockCost` occupies in every family's cost vector), or
/// `None` for an empty window.
fn non_empty_ranks(part: &graph_sparse::RowWindowPartition) -> Vec<Option<usize>> {
    let mut rank = 0usize;
    part.windows
        .iter()
        .map(|w| {
            if w.is_empty() {
                None
            } else {
                let r = rank;
                rank += 1;
                Some(r)
            }
        })
        .collect()
}

/// For each entry of `permuted` (built by [`Csr::permute_symmetric`] with
/// `perm`), the index of the corresponding entry in `original`. Rows are
/// column-sorted in both matrices, so each entry resolves by binary search.
fn entry_gather(original: &Csr, permuted: &Csr, perm: &[u32]) -> Vec<u32> {
    let mut gather = Vec::with_capacity(permuted.nnz());
    for new_r in 0..permuted.nrows {
        let old_r = perm[new_r] as usize;
        let (os, _) = original.row_range(old_r);
        let old_cols = original.row_cols(old_r);
        for &new_c in permuted.row_cols(new_r) {
            let old_c = perm[new_c as usize];
            let k = old_cols
                .binary_search(&old_c)
                .expect("permuted entry must exist in the original row");
            gather.push((os + k) as u32);
        }
    }
    gather
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SpmmKernel;
    use crate::{CudaSpmm, TensorSpmm};
    use graph_sparse::gen;

    #[test]
    fn plan_execute_matches_direct_spmm_per_family() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 4_000, 16, 0.9, 1);
        let x = DenseMatrix::random_features(512, 32, 2);
        for family in KernelFamily::ALL {
            let plan = Plan::prepare(
                &a,
                PlanSpec {
                    family,
                    use_loa: false,
                },
                &dev,
            );
            let got = plan.execute(&a, &x, &dev).z;
            let want = match family {
                KernelFamily::Straightforward => {
                    StraightforwardHybrid::default().spmm(&a, &x, &dev)
                }
                KernelFamily::Cuda => CudaSpmm::optimized().spmm(&a, &x, &dev),
                KernelFamily::Tensor => TensorSpmm::optimized().spmm(&a, &x, &dev),
                KernelFamily::Hybrid => HcSpmm::default().spmm(&a, &x, &dev),
            };
            assert_eq!(
                got,
                want.z,
                "{} plan diverged from direct spmm",
                family.name()
            );
        }
    }

    #[test]
    fn loa_plan_is_numerically_faithful_and_reusable() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::scatter_relabel(&gen::molecules(512, 1_200, 3), 4);
        let x = DenseMatrix::random_features(512, 32, 5);
        let spec = PlanSpec {
            family: KernelFamily::Hybrid,
            use_loa: true,
        };
        let plan = Plan::prepare(&a, spec, &dev);
        let z = plan.execute(&a, &x, &dev).z;
        // Permutation changes f32 summation order: close, not bit-equal.
        assert!(a.spmm_reference(&x).max_abs_diff(&z) < 0.05);
        // Same structure, new values: the gather must route them correctly.
        let mut b = a.clone();
        for v in &mut b.vals {
            *v *= 0.5;
        }
        let zb = plan.execute(&b, &x, &dev).z;
        assert!(b.spmm_reference(&x).max_abs_diff(&zb) < 0.05);
        // And re-preparing from the reweighted graph gives the identical
        // result (structure-only artifacts).
        let plan_b = Plan::prepare(&b, spec, &dev);
        assert_eq!(zb, plan_b.execute(&b, &x, &dev).z);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_allocation() {
        // The tentpole contract: executing a warm plan (recycled LOA
        // staging buffers, cached block costs) must produce bit-identical
        // output AND identical simulated timing to a cold plan.
        let dev = DeviceSpec::rtx3090();
        let a = gen::scatter_relabel(&gen::molecules(512, 1_200, 3), 4);
        let spec = PlanSpec {
            family: KernelFamily::Hybrid,
            use_loa: true,
        };
        let warm = Plan::prepare(&a, spec, &dev);
        let xs: Vec<DenseMatrix> = (0..3)
            .map(|s| DenseMatrix::random_features(512, 32, 40 + s))
            .collect();
        for (i, x) in xs.iter().enumerate() {
            let got = warm.execute(&a, x, &dev);
            // A cold plan allocates everything fresh.
            let fresh = Plan::prepare(&a, spec, &dev).execute(&a, x, &dev);
            assert_eq!(got.z, fresh.z, "request {i}: warm z != cold z");
            assert_eq!(
                got.run.time_ms.to_bits(),
                fresh.run.time_ms.to_bits(),
                "request {i}: warm timing != cold timing"
            );
        }
        let s = warm.workspace_stats();
        assert_eq!(s.scratch_allocs, 1, "only the first request allocates");
        assert_eq!(s.scratch_reuses, 2);
        assert_eq!(s.cost_builds, 1, "block costs built once");
        assert_eq!(s.cost_reuses, 2);
    }

    #[test]
    fn workspace_survives_feature_width_changes() {
        // Requests with different feature widths resize the recycled
        // buffers and key separate block-cost entries; outputs stay
        // bit-identical to fresh plans either way.
        let dev = DeviceSpec::rtx3090();
        let a = gen::scatter_relabel(&gen::molecules(256, 700, 5), 2);
        let spec = PlanSpec {
            family: KernelFamily::Tensor,
            use_loa: true,
        };
        let warm = Plan::prepare(&a, spec, &dev);
        for (i, dim) in [64, 8, 32, 8].iter().enumerate() {
            let x = DenseMatrix::random_features(256, *dim, 90 + i as u64);
            let got = warm.execute(&a, &x, &dev).z;
            let fresh = Plan::prepare(&a, spec, &dev).execute(&a, &x, &dev).z;
            assert_eq!(got, fresh, "dim {dim} diverged on the warm plan");
        }
        let s = warm.workspace_stats();
        // Three distinct dims build three cost vectors; the repeated dim 8
        // hits the cache.
        assert_eq!((s.cost_builds, s.cost_reuses), (3, 1));
        assert_eq!((s.scratch_allocs, s.scratch_reuses), (1, 3));
    }

    #[test]
    fn patch_matches_fresh_prepare_and_bills_only_dirty_windows() {
        use graph_sparse::DeltaCsr;
        let dev = DeviceSpec::rtx3090();
        // Many more windows than SMs, so the simulated preprocess makespan
        // actually scales with window count and the patch can beat it.
        let n = 16 * 1024;
        let a = gen::community(n, 120_000, 64, 0.9, 11);
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), &dev);
        // Warm the workspace so the patch has a cost vector to splice.
        let x = DenseMatrix::random_features(n, 32, 12);
        plan.execute(&a, &x, &dev);
        // A small late delta: one insert, one delete, both in high rows.
        let del = (
            500u32,
            a.row_cols(500).first().copied().expect("row 500 has edges"),
        );
        let delta = DeltaCsr::new(n, n, vec![(498, 3, 1.0)], vec![del]).expect("valid");
        let b = delta.apply(&a).expect("applies");

        let patched = plan.patch(&a, &delta, &dev).expect("patches");
        let fresh = Plan::prepare(&b, PlanSpec::hybrid(), &dev);
        assert_eq!(patched.fingerprint, fresh.fingerprint);
        assert_eq!(patched.fingerprint_state, fresh.fingerprint_state);
        assert_eq!(patched.pre.partition, fresh.pre.partition);
        assert_eq!(patched.pre.choices, fresh.pre.choices);
        // Dirty-window-only preprocessing: two touched windows of 32.
        assert!(
            patched.sim_prepare_ms() < fresh.sim_prepare_ms() / 4.0,
            "patch {} ms vs full {} ms — not sublinear",
            patched.sim_prepare_ms(),
            fresh.sim_prepare_ms()
        );
        // Execution is bit-identical, timing included, and the spliced
        // cost vector serves the first request without a build.
        let got = patched.execute(&b, &x, &dev);
        let want = fresh.execute(&b, &x, &dev);
        assert_eq!(got.z, want.z);
        assert_eq!(got.run.time_ms.to_bits(), want.run.time_ms.to_bits());
        let s = patched.workspace_stats();
        assert_eq!((s.cost_splices, s.cost_builds, s.cost_reuses), (1, 0, 1));
    }

    #[test]
    fn patch_rejects_what_it_cannot_patch() {
        use graph_sparse::{DeltaCsr, DeltaError};
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(128, 500, 21);
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), &dev);
        let delta = DeltaCsr::new(128, 128, vec![], vec![]).expect("empty delta");
        // Wrong base graph.
        let other = gen::erdos_renyi(128, 510, 22);
        assert_eq!(
            plan.patch(&other, &delta, &dev).err(),
            Some(PatchError::BaseMismatch)
        );
        // Delta that disagrees with the base.
        let bad = DeltaCsr::new(128, 128, vec![], vec![(0, 0)]).expect("constructs");
        if a.row_cols(0).contains(&0) {
            assert!(plan.patch(&a, &bad, &dev).is_ok());
        } else {
            assert_eq!(
                plan.patch(&a, &bad, &dev).err(),
                Some(PatchError::Delta(DeltaError::EdgeAbsent { row: 0, col: 0 }))
            );
        }
        // LOA plans are not patchable.
        let loa_plan = Plan::prepare(
            &a,
            PlanSpec {
                family: KernelFamily::Hybrid,
                use_loa: true,
            },
            &dev,
        );
        assert_eq!(
            loa_plan.patch(&a, &delta, &dev).err(),
            Some(PatchError::LoaPlan)
        );
    }

    #[test]
    #[should_panic(expected = "does not match the plan")]
    fn structure_mismatch_is_rejected() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(128, 500, 1);
        let b = gen::erdos_renyi(128, 510, 2);
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), &dev);
        let x = DenseMatrix::random_features(128, 8, 3);
        plan.execute(&b, &x, &dev);
    }

    #[test]
    fn approx_bytes_tracks_artifact_size() {
        let dev = DeviceSpec::rtx3090();
        let small = Plan::prepare(&gen::erdos_renyi(64, 200, 1), PlanSpec::hybrid(), &dev);
        let large = Plan::prepare(
            &gen::erdos_renyi(2_048, 12_000, 1),
            PlanSpec::hybrid(),
            &dev,
        );
        assert!(small.approx_bytes() > 0);
        assert!(large.approx_bytes() > 4 * small.approx_bytes());
    }

    /// Recursive size-accounting audit: recompute the byte total from
    /// first principles — per window, the struct size plus the *actual*
    /// lengths of its encoded tile-metadata parts; per choice, one byte;
    /// the LOA artifacts; the fingerprint checkpoints — and demand exact
    /// agreement with `approx_bytes`. Catches both stale formulas (the old
    /// version billed a flat 4·(nnz + nnz_cols) + 48 that no longer exists
    /// in memory) and capacity-vs-length drift.
    #[test]
    fn approx_bytes_recursive_audit() {
        let dev = DeviceSpec::rtx3090();
        let graphs = [
            gen::community(512, 4_000, 16, 0.9, 7),
            gen::erdos_renyi(256, 900, 8),
            Csr::empty(64, 64),
        ];
        for (gi, a) in graphs.iter().enumerate() {
            let loa_spec = PlanSpec {
                use_loa: true,
                ..PlanSpec::hybrid()
            };
            for spec in [PlanSpec::hybrid(), loa_spec] {
                let plan = Plan::prepare(a, spec, &dev);
                let mut want = 0u64;
                for w in &plan.pre.partition.windows {
                    let (col_stream, bitmaps) = w.meta.parts();
                    want += std::mem::size_of::<graph_sparse::RowWindow>() as u64
                        + col_stream.len() as u64
                        + 16 * bitmaps.len() as u64;
                    // The heap accessor must agree with the raw parts.
                    assert_eq!(
                        w.meta.heap_bytes(),
                        col_stream.len() + 16 * bitmaps.len(),
                        "graph {gi}: heap_bytes out of sync with parts"
                    );
                }
                want += plan.pre.choices.len() as u64;
                if let Some(l) = &plan.loa {
                    want +=
                        l.structure.byte_size() + 4 * (l.perm.len() + l.val_gather.len()) as u64;
                }
                want += plan.fingerprint_state.checkpoint_bytes();
                assert_eq!(
                    plan.approx_bytes(),
                    want,
                    "graph {gi}, spec {spec:?}: accounting disagrees with a recursive walk"
                );
            }
        }
    }
}
