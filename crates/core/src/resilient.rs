//! Resilient kernel execution: typed errors, bounded retry, fallback
//! chains and output validation over [`Plan`]s.
//!
//! The hybrid design contains a natural resilience story the happy path
//! never uses: every Tensor-core window has a semantically equivalent
//! CUDA-core execution, both have a straightforward-kernel equivalent, and
//! everything has a CPU reference. [`execute_resilient`] exploits that
//! redundancy. It runs a request under a [`gpu_sim::FaultScope`], checks the
//! device's fault latch after every launch (the `cudaGetLastError` idiom),
//! retries transient faults a bounded number of times, and walks a
//! [`fallback_chain`] of ever-simpler executions when a step keeps failing
//! — ending at the CPU reference, which involves no device at all.
//!
//! Two invariants make the layer safe to put in front of serving traffic:
//!
//! 1. **Only clean attempts are returned.** A faulted attempt's output is
//!    discarded wholesale (its simulated time is tallied as
//!    [`ResilientRun::wasted_sim_ms`]), so a returned result is always
//!    bit-identical to a fault-free run of the family that produced it.
//! 2. **No panics.** Every failure on this path — bad shapes, structure
//!    mismatches, device faults, validation failures, exhausted fallbacks —
//!    is a typed [`HcError`].
//!
//! Determinism: fault schedules are pure functions of `(seed, launch)`,
//! launches happen on the driving thread only, and every kernel is
//! bit-identical at any worker count — so outcomes, retry counts and
//! fallback choices are identical at any `hc-parallel` thread count.

use std::fmt;

use gpu_sim::{DeviceSpec, Fault, FaultConfig, FaultKind, FaultScope, KernelRun};
use graph_sparse::{Csr, CsrError, DenseMatrix, StructureFingerprint};

use crate::kernels::SpmmResult;
use crate::plan::Plan;
use crate::sanitize::KernelFamily;

/// Typed error taxonomy for the kernel/plan execution path. Replaces the
/// panics a hostile input or injected device fault used to cause.
#[derive(Debug, Clone, PartialEq)]
pub enum HcError {
    /// The request's graph failed structural validation.
    BadInput(CsrError),
    /// The feature matrix's row count does not match the graph's columns.
    ShapeMismatch {
        /// Rows the graph expects of the dense operand (`a.ncols`).
        expected_rows: usize,
        /// Rows the request supplied.
        got_rows: usize,
    },
    /// The request's graph structure does not match the plan's fingerprint.
    PlanMismatch,
    /// The device reported a fault during a kernel launch.
    DeviceFault {
        /// The fault kind the device latched.
        kind: FaultKind,
        /// The kernel family whose launch faulted.
        family: KernelFamily,
    },
    /// A clean-looking output contained NaN or ±Inf.
    NonFiniteOutput {
        /// Row of the first non-finite element.
        row: usize,
        /// Column of the first non-finite element.
        col: usize,
    },
    /// A sampled output row diverged from the CPU reference beyond
    /// tolerance (silent-corruption guard).
    OutputMismatch {
        /// The sampled row that diverged.
        row: usize,
        /// Max absolute difference observed on that row.
        diff: f32,
        /// The tolerance it exceeded.
        tol: f32,
    },
    /// Every step of the fallback chain failed.
    FallbacksExhausted {
        /// Total execution attempts made (retries included).
        attempts: u32,
        /// The error the final step failed with.
        last: Box<HcError>,
    },
    /// A plan cannot be used where it was offered (e.g. the GNN aggregator
    /// requires a hybrid-family, non-LOA plan).
    IncompatiblePlan(&'static str),
    /// The serving front-end refused the request at admission: load
    /// shedding, never a panic or an unbounded buffer.
    Overloaded {
        /// Which admission limit rejected the request.
        reason: OverloadReason,
    },
}

/// Why the serving front-end shed a request (see
/// [`HcError::Overloaded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The bounded ingestion queue was at capacity.
    QueueFull,
    /// The request's tenant exhausted its admission quota for the
    /// current scheduling epoch.
    TenantQuota,
}

impl OverloadReason {
    /// Stable lower-case label (used in reports and BENCH.json).
    pub fn name(self) -> &'static str {
        match self {
            OverloadReason::QueueFull => "queue-full",
            OverloadReason::TenantQuota => "tenant-quota",
        }
    }
}

impl fmt::Display for HcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcError::BadInput(e) => write!(f, "invalid input graph: {e}"),
            HcError::ShapeMismatch {
                expected_rows,
                got_rows,
            } => write!(
                f,
                "feature matrix has {got_rows} rows, graph needs {expected_rows}"
            ),
            HcError::PlanMismatch => {
                write!(f, "request graph structure does not match the plan's")
            }
            HcError::DeviceFault { kind, family } => {
                write!(f, "device fault ({kind}) during {} launch", family.name())
            }
            HcError::NonFiniteOutput { row, col } => {
                write!(f, "non-finite output at ({row}, {col})")
            }
            HcError::OutputMismatch { row, diff, tol } => write!(
                f,
                "output row {row} diverges from reference by {diff} (tol {tol})"
            ),
            HcError::FallbacksExhausted { attempts, last } => {
                write!(
                    f,
                    "all fallbacks exhausted after {attempts} attempts: {last}"
                )
            }
            HcError::IncompatiblePlan(why) => write!(f, "incompatible plan: {why}"),
            HcError::Overloaded { reason } => match reason {
                OverloadReason::QueueFull => {
                    write!(f, "overloaded: ingestion queue full")
                }
                OverloadReason::TenantQuota => {
                    write!(f, "overloaded: tenant admission quota exhausted")
                }
            },
        }
    }
}

impl std::error::Error for HcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HcError::BadInput(e) => Some(e),
            HcError::FallbacksExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<CsrError> for HcError {
    fn from(e: CsrError) -> HcError {
        HcError::BadInput(e)
    }
}

/// One step of a fallback chain: a kernel family executed through the
/// prepared plan, or the device-free CPU reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackStep {
    /// Execute the plan with this kernel family.
    Family(KernelFamily),
    /// `Csr::spmm_reference` on the host — no device, no faults.
    CpuReference,
}

impl FallbackStep {
    /// Stable lowercase name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FallbackStep::Family(f) => f.name(),
            FallbackStep::CpuReference => "cpu-reference",
        }
    }
}

impl fmt::Display for FallbackStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The degradation ladder for a primary family: each step drops a piece of
/// specialized machinery (Tensor cores, then the hybrid scheduler's CUDA
/// path, then windowing itself), ending at the CPU reference. The first
/// step is always the primary itself.
pub fn fallback_chain(primary: KernelFamily) -> Vec<FallbackStep> {
    use KernelFamily::*;
    let families: &[KernelFamily] = match primary {
        Tensor => &[Tensor, Cuda, Straightforward],
        Hybrid => &[Hybrid, Cuda, Straightforward],
        Cuda => &[Cuda, Straightforward],
        Straightforward => &[Straightforward],
    };
    let mut chain: Vec<FallbackStep> = families.iter().copied().map(FallbackStep::Family).collect();
    chain.push(FallbackStep::CpuReference);
    chain
}

/// Output-validation settings: the NaN/Inf guard plus a sampled-row
/// differential check against the CPU reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Validation {
    /// Scan the full output for NaN/±Inf.
    pub check_finite: bool,
    /// Number of evenly spaced rows to re-compute on the host and compare
    /// (0 disables the differential check).
    pub sample_rows: usize,
    /// Max absolute per-element difference a sampled row may show. Must
    /// cover TF32 emulation error on Tensor-path windows.
    pub tol: f32,
}

impl Default for Validation {
    fn default() -> Validation {
        Validation {
            check_finite: true,
            sample_rows: 4,
            tol: 0.08,
        }
    }
}

/// Retry/fallback/validation policy for [`execute_resilient`]. The default
/// is the production posture: two retries per step, full chain, validation
/// on, faults off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Retries per chain step for transient faults (a step is attempted at
    /// most `1 + max_retries` times).
    pub max_retries: u32,
    /// Walk the fallback chain on persistent failure; when false, only the
    /// primary step is tried.
    pub allow_fallback: bool,
    /// Output validation applied to clean attempts.
    pub validation: Validation,
    /// Fault schedule installed for the call ([`FaultConfig::off`] in
    /// production).
    pub faults: FaultConfig,
}

impl Default for ResiliencePolicy {
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            max_retries: 2,
            allow_fallback: true,
            validation: Validation::default(),
            faults: FaultConfig::off(),
        }
    }
}

/// Everything one resilient execution did: the outcome plus the forensic
/// trail (retries, faults seen, discarded work).
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// The surviving result, or the typed error that ended the chain.
    pub result: Result<SpmmResult, HcError>,
    /// The chain step that produced the surviving result (the primary
    /// family when nothing went wrong). Meaningless on `Err`.
    pub executed: FallbackStep,
    /// Total attempts beyond the first, across all steps.
    pub retries: u32,
    /// Every fault the device latched during the call, in order.
    pub faults: Vec<Fault>,
    /// Clean attempts discarded by output validation.
    pub validation_failures: u32,
    /// Simulated milliseconds of discarded (faulted or invalid) attempts —
    /// the price of recovery.
    pub wasted_sim_ms: f64,
    /// True when the *plan* itself is implicated: a structural fault
    /// (shared-memory allocation failure is a property of the launch
    /// configuration) or a validation failure (the plan's artifacts
    /// produced wrong numbers). Serving layers quarantine poisoned plans.
    pub poisoned: bool,
}

impl ResilientRun {
    /// True when the result came from a step other than the primary, or
    /// needed retries to arrive.
    pub fn degraded(&self, primary: KernelFamily) -> bool {
        self.retries > 0 || self.executed != FallbackStep::Family(primary)
    }
}

/// Execute `plan` against a request with retry, fallback and validation.
/// Never panics on this path: every failure mode is a typed [`HcError`] in
/// [`ResilientRun::result`].
///
/// ```
/// use gpu_sim::DeviceSpec;
/// use graph_sparse::{gen, DenseMatrix};
/// use hc_core::{execute_resilient, Plan, PlanSpec, ResiliencePolicy};
///
/// let dev = DeviceSpec::rtx3090();
/// let a = gen::community(256, 1_500, 8, 0.9, 1);
/// let x = DenseMatrix::random_features(256, 16, 2);
/// let plan = Plan::prepare(&a, PlanSpec::hybrid(), &dev);
/// let run = execute_resilient(&plan, &a, &x, &dev, &ResiliencePolicy::default());
/// let z = run.result.unwrap().z;
/// assert!(a.spmm_reference(&x).max_abs_diff(&z) < 0.05);
/// ```
pub fn execute_resilient(
    plan: &Plan,
    a: &Csr,
    x: &DenseMatrix,
    dev: &DeviceSpec,
    policy: &ResiliencePolicy,
) -> ResilientRun {
    let mut run = ResilientRun {
        result: Err(HcError::PlanMismatch),
        executed: FallbackStep::Family(plan.spec.family),
        retries: 0,
        faults: Vec::new(),
        validation_failures: 0,
        wasted_sim_ms: 0.0,
        poisoned: false,
    };

    // Request pre-checks: typed errors, no device work.
    if x.rows != a.ncols {
        run.result = Err(HcError::ShapeMismatch {
            expected_rows: a.ncols,
            got_rows: x.rows,
        });
        return run;
    }
    if StructureFingerprint::of(a) != plan.fingerprint {
        run.result = Err(HcError::PlanMismatch);
        return run;
    }

    // One scope for the whole call: the launch counter keeps advancing
    // across retries, so a retry draws a fresh (still deterministic)
    // fault decision instead of replaying the one that just fired.
    let scope = policy
        .faults
        .enabled()
        .then(|| FaultScope::install(policy.faults));

    let chain = if policy.allow_fallback {
        fallback_chain(plan.spec.family)
    } else {
        vec![
            FallbackStep::Family(plan.spec.family),
            // Even without family fallback, a typed error beats a panic;
            // the CPU reference stays as the final safety net.
            FallbackStep::CpuReference,
        ]
    };

    let mut attempts: u32 = 0;
    let mut last_err = HcError::PlanMismatch;
    for &step in &chain {
        let mut budget = match step {
            // Transient faults are worth retrying on the same step.
            FallbackStep::Family(_) => 1 + policy.max_retries,
            // The reference is fault-free; one attempt suffices.
            FallbackStep::CpuReference => 1,
        };
        while budget > 0 {
            budget -= 1;
            if attempts > 0 {
                run.retries += 1;
            }
            attempts += 1;

            let attempt = match step {
                FallbackStep::Family(f) => plan.execute_as(f, a, x, dev),
                FallbackStep::CpuReference => SpmmResult {
                    z: a.spmm_reference(x),
                    run: KernelRun::default(),
                },
            };

            // The cudaGetLastError idiom: collect what the device latched
            // during this attempt's launches.
            let faults: Vec<Fault> = scope.as_ref().map(|s| s.take_faults()).unwrap_or_default();
            if let Some(first) = faults.first() {
                let kind = first.kind;
                let structural = faults.iter().any(|f| !f.kind.is_transient());
                run.faults.extend(faults);
                run.wasted_sim_ms += attempt.run.time_ms;
                last_err = HcError::DeviceFault {
                    kind,
                    family: match step {
                        FallbackStep::Family(f) => f,
                        FallbackStep::CpuReference => plan.spec.family,
                    },
                };
                if structural {
                    // Retrying the same launch configuration fails the
                    // same way; move down the chain and flag the plan.
                    run.poisoned = true;
                    break;
                }
                continue; // transient: retry within budget
            }

            // Clean attempt: validate before trusting it.
            match validate_output(&attempt.z, a, x, step, &policy.validation) {
                Ok(()) => {
                    run.executed = step;
                    run.result = Ok(attempt);
                    return run;
                }
                Err(e) => {
                    run.validation_failures += 1;
                    run.wasted_sim_ms += attempt.run.time_ms;
                    // Wrong numbers from a clean launch implicate the
                    // plan's artifacts, not the weather: don't retry the
                    // same step, and tell the cache.
                    if step != FallbackStep::CpuReference {
                        run.poisoned = true;
                    }
                    last_err = e;
                    break;
                }
            }
        }
    }

    run.result = Err(HcError::FallbacksExhausted {
        attempts,
        last: Box::new(last_err),
    });
    run
}

/// NaN/Inf guard plus the sampled-row differential check. The CPU
/// reference step skips the differential (it *is* the reference) but keeps
/// the finite guard — non-finite inputs must still surface as typed
/// errors.
fn validate_output(
    z: &DenseMatrix,
    a: &Csr,
    x: &DenseMatrix,
    step: FallbackStep,
    v: &Validation,
) -> Result<(), HcError> {
    if v.check_finite {
        for (i, val) in z.data.iter().enumerate() {
            if !val.is_finite() {
                return Err(HcError::NonFiniteOutput {
                    row: i.checked_div(z.cols).unwrap_or(0),
                    col: i.checked_rem(z.cols).unwrap_or(0),
                });
            }
        }
    }
    if step == FallbackStep::CpuReference || v.sample_rows == 0 || z.rows == 0 {
        return Ok(());
    }
    let samples = v.sample_rows.min(z.rows);
    for s in 0..samples {
        // Evenly spaced rows, first and last included when possible.
        let row = if samples == 1 {
            0
        } else {
            s * (z.rows - 1) / (samples - 1)
        };
        let reference = reference_row(a, x, row);
        let got = z.row(row);
        let mut worst = 0.0f32;
        for (g, r) in got.iter().zip(&reference) {
            worst = worst.max((g - r).abs());
        }
        if worst > v.tol {
            return Err(HcError::OutputMismatch {
                row,
                diff: worst,
                tol: v.tol,
            });
        }
    }
    Ok(())
}

/// One row of `a · x`, computed directly on the host.
fn reference_row(a: &Csr, x: &DenseMatrix, row: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; x.cols];
    let (s, e) = a.row_range(row);
    for k in s..e {
        let col = a.col_idx[k] as usize;
        let v = a.vals[k];
        for (o, xv) in out.iter_mut().zip(x.row(col)) {
            *o += v * xv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanSpec;
    use graph_sparse::gen;

    fn setup(family: KernelFamily) -> (DeviceSpec, Csr, DenseMatrix, Plan) {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(256, 1_500, 8, 0.9, 1);
        let x = DenseMatrix::random_features(256, 16, 2);
        let plan = Plan::prepare(
            &a,
            PlanSpec {
                family,
                use_loa: false,
            },
            &dev,
        );
        (dev, a, x, plan)
    }

    #[test]
    fn no_faults_returns_primary_bit_identical() {
        for family in KernelFamily::ALL {
            let (dev, a, x, plan) = setup(family);
            let run = execute_resilient(&plan, &a, &x, &dev, &ResiliencePolicy::default());
            let z = run.result.clone().expect("clean run must succeed").z;
            assert_eq!(z, plan.execute(&a, &x, &dev).z, "{}", family.name());
            assert_eq!(run.executed, FallbackStep::Family(family));
            assert_eq!(run.retries, 0);
            assert!(run.faults.is_empty());
            assert!(!run.poisoned);
            assert!(!run.degraded(family));
            assert_eq!(run.wasted_sim_ms, 0.0);
        }
    }

    #[test]
    fn fallback_reexecution_reuses_workspace_bit_identically() {
        // Every device launch faults, so each run walks the full fallback
        // chain — re-executing the plan several times per request through
        // its workspace. Warm-arena re-execution must stay bit-identical
        // to a cold plan under the identical fault schedule.
        let dev = DeviceSpec::rtx3090();
        let a = gen::scatter_relabel(&gen::molecules(256, 700, 11), 3);
        let x = DenseMatrix::random_features(256, 16, 12);
        let spec = PlanSpec {
            family: KernelFamily::Tensor,
            use_loa: true,
        };
        let policy = ResiliencePolicy {
            faults: FaultConfig {
                seed: 5,
                bit_flip: 0.0,
                shared_alloc_fail: 1.0,
                timeout: 0.0,
                launch_fail: 0.0,
            },
            ..Default::default()
        };
        let warm = Plan::prepare(&a, spec, &dev);
        let first = execute_resilient(&warm, &a, &x, &dev, &policy);
        let second = execute_resilient(&warm, &a, &x, &dev, &policy);
        let fresh = execute_resilient(&Plan::prepare(&a, spec, &dev), &a, &x, &dev, &policy);
        assert_eq!(first.executed, FallbackStep::CpuReference);
        let z1 = first.result.expect("CPU reference serves").z;
        let z2 = second.result.expect("CPU reference serves").z;
        let zf = fresh.result.expect("CPU reference serves").z;
        assert_eq!(z1, z2, "warm re-execution diverged");
        assert_eq!(z1, zf, "warm plan diverged from cold plan");
        let s = warm.workspace_stats();
        assert!(
            s.scratch_reuses > 0,
            "fallback attempts must recycle the arena: {s:?}"
        );
        assert!(s.cost_reuses > 0, "block costs must be reused: {s:?}");
    }

    #[test]
    fn shape_mismatch_is_a_typed_error_not_a_panic() {
        let (dev, a, _, plan) = setup(KernelFamily::Hybrid);
        let bad = DenseMatrix::random_features(a.ncols + 3, 16, 7);
        let run = execute_resilient(&plan, &a, &bad, &dev, &ResiliencePolicy::default());
        assert_eq!(
            run.result.unwrap_err(),
            HcError::ShapeMismatch {
                expected_rows: a.ncols,
                got_rows: a.ncols + 3
            }
        );
    }

    #[test]
    fn structure_mismatch_is_a_typed_error() {
        let (dev, _, x, plan) = setup(KernelFamily::Hybrid);
        let other = gen::erdos_renyi(256, 1_400, 9);
        let run = execute_resilient(&plan, &other, &x, &dev, &ResiliencePolicy::default());
        assert_eq!(run.result.unwrap_err(), HcError::PlanMismatch);
    }

    #[test]
    fn transient_faults_are_retried_and_result_stays_clean() {
        let (dev, a, x, plan) = setup(KernelFamily::Hybrid);
        let clean = plan.execute(&a, &x, &dev).z;
        // Only transient kinds, high rate: forces retries but every
        // surviving result must still be from a zero-fault attempt.
        let mut saw_retry = false;
        for seed in 0..24u64 {
            let policy = ResiliencePolicy {
                faults: FaultConfig {
                    seed,
                    bit_flip: 0.25,
                    shared_alloc_fail: 0.0,
                    timeout: 0.25,
                    launch_fail: 0.0,
                },
                ..Default::default()
            };
            let run = execute_resilient(&plan, &a, &x, &dev, &policy);
            saw_retry |= run.retries > 0;
            match &run.result {
                Ok(r) => {
                    if run.executed == FallbackStep::Family(KernelFamily::Hybrid) {
                        assert_eq!(r.z, clean, "seed {seed}: survivor must be bit-clean");
                    }
                    assert_eq!(run.faults.len() as u32, run.retries);
                    if run.retries > 0 {
                        assert!(run.wasted_sim_ms > 0.0);
                    }
                }
                Err(HcError::FallbacksExhausted { .. }) => {}
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
        }
        assert!(saw_retry, "rate 0.5 over 24 seeds must trigger retries");
    }

    #[test]
    fn structural_fault_falls_back_without_retry_and_poisons() {
        let (dev, a, x, plan) = setup(KernelFamily::Tensor);
        // Every launch fails shared-memory allocation: tensor, cuda and
        // straightforward all fault; only the CPU reference survives.
        let policy = ResiliencePolicy {
            faults: FaultConfig {
                seed: 1,
                bit_flip: 0.0,
                shared_alloc_fail: 1.0,
                timeout: 0.0,
                launch_fail: 0.0,
            },
            ..Default::default()
        };
        let run = execute_resilient(&plan, &a, &x, &dev, &policy);
        let z = run.result.clone().expect("cpu reference must survive").z;
        assert_eq!(run.executed, FallbackStep::CpuReference);
        assert_eq!(z, a.spmm_reference(&x));
        assert!(run.poisoned);
        assert!(run.degraded(KernelFamily::Tensor));
        // Structural faults skip the retry budget: exactly one attempt per
        // device-backed step (tensor, cuda, straightforward).
        assert_eq!(run.faults.len(), 3);
        assert!(run
            .faults
            .iter()
            .all(|f| f.kind == FaultKind::SharedAllocFail));
    }

    #[test]
    fn fallback_disabled_still_returns_typed_outcome() {
        let (dev, a, x, plan) = setup(KernelFamily::Cuda);
        let policy = ResiliencePolicy {
            allow_fallback: false,
            faults: FaultConfig {
                seed: 3,
                bit_flip: 0.0,
                shared_alloc_fail: 1.0,
                timeout: 0.0,
                launch_fail: 0.0,
            },
            ..Default::default()
        };
        let run = execute_resilient(&plan, &a, &x, &dev, &policy);
        // Primary faults structurally; CPU safety net still answers.
        assert_eq!(run.executed, FallbackStep::CpuReference);
        assert_eq!(run.faults.len(), 1);
    }

    #[test]
    fn non_finite_features_surface_as_typed_error() {
        let (dev, a, mut x, plan) = setup(KernelFamily::Hybrid);
        x.data[5] = f32::NAN;
        let run = execute_resilient(&plan, &a, &x, &dev, &ResiliencePolicy::default());
        match run.result.unwrap_err() {
            HcError::FallbacksExhausted { last, .. } => {
                assert!(matches!(*last, HcError::NonFiniteOutput { .. }));
            }
            e => panic!("unexpected error {e}"),
        }
        assert!(run.validation_failures > 0);
    }

    #[test]
    fn chains_end_at_cpu_reference_and_start_at_primary() {
        for family in KernelFamily::ALL {
            let chain = fallback_chain(family);
            assert_eq!(chain[0], FallbackStep::Family(family));
            assert_eq!(
                *chain.last().expect("non-empty"),
                FallbackStep::CpuReference
            );
        }
        assert_eq!(fallback_chain(KernelFamily::Tensor).len(), 4);
        assert_eq!(fallback_chain(KernelFamily::Straightforward).len(), 2);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (dev, a, x, plan) = setup(KernelFamily::Hybrid);
        let policy = ResiliencePolicy {
            faults: FaultConfig::uniform(11, 0.6),
            ..Default::default()
        };
        let a_run = execute_resilient(&plan, &a, &x, &dev, &policy);
        let b_run = execute_resilient(&plan, &a, &x, &dev, &policy);
        assert_eq!(a_run.retries, b_run.retries);
        assert_eq!(a_run.executed, b_run.executed);
        assert_eq!(a_run.faults, b_run.faults);
        assert_eq!(a_run.result.is_ok(), b_run.result.is_ok());
        if let (Ok(ra), Ok(rb)) = (&a_run.result, &b_run.result) {
            assert_eq!(ra.z, rb.z);
        }
    }
}
