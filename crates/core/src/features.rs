//! Row-window features driving core selection (§IV-B).
//!
//! The paper identifies two dominant characteristics: *sparsity*, which
//! governs the CUDA-core computation cost, and the *number of non-zero
//! columns*, which governs the Tensor-core memory-access cost. Other factors
//! (e.g. the distribution of non-zeros within the window) vary execution
//! time by under 10 % and are deliberately ignored.

use graph_sparse::RowWindow;
use serde::{Deserialize, Serialize};

/// The selector's feature vector for one row window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowFeatures {
    /// Number of non-zero columns (`x1` in the encoded model).
    pub nnz_cols: f64,
    /// Sparsity of the condensed window (`x2`).
    pub sparsity: f64,
}

impl WindowFeatures {
    /// Extract features from a condensed row window.
    pub fn of(w: &RowWindow) -> Self {
        WindowFeatures {
            nnz_cols: w.nnz_cols() as f64,
            sparsity: w.sparsity(),
        }
    }

    /// Build from raw counts (used by the training pipeline, which knows the
    /// generator parameters without materializing windows).
    pub fn from_counts(rows: usize, nnz_cols: usize, nnz: usize) -> Self {
        let cells = rows * nnz_cols;
        WindowFeatures {
            nnz_cols: nnz_cols as f64,
            sparsity: if cells == 0 {
                1.0
            } else {
                1.0 - nnz as f64 / cells as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{Coo, RowWindowPartition};

    #[test]
    fn matches_window_accessors() {
        let coo = Coo::from_triples(16, 64, [(0, 0, 1.0), (1, 5, 1.0), (2, 5, 1.0)]);
        let p = RowWindowPartition::build(&coo.to_csr());
        let f = WindowFeatures::of(&p.windows[0]);
        assert_eq!(f.nnz_cols, 2.0);
        assert!((f.sparsity - (1.0 - 3.0 / 32.0)).abs() < 1e-12);
    }

    #[test]
    fn from_counts_agrees_with_of() {
        let coo = Coo::from_triples(16, 64, [(0, 0, 1.0), (1, 5, 1.0), (2, 9, 1.0)]);
        let p = RowWindowPartition::build(&coo.to_csr());
        let a = WindowFeatures::of(&p.windows[0]);
        let b = WindowFeatures::from_counts(16, 3, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_counts() {
        let f = WindowFeatures::from_counts(16, 0, 0);
        assert_eq!(f.sparsity, 1.0);
        assert_eq!(f.nnz_cols, 0.0);
    }
}
