//! Memory-budgeted (chunked) SpMM.
//!
//! §VI-C1 reports that DP's GNN training runs out of GPU memory for every
//! framework. The classic remedy is panel execution: split the dense
//! operand into column panels so that `A + X_panel + Z_panel (+ condensed
//! structures)` fits the budget, and run one kernel per panel. This module
//! implements that as an extension feature: identical numerics, one launch
//! per panel, and an explicit memory-fit check.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};

use crate::kernels::hybrid::HcSpmm;
use crate::kernels::SpmmResult;
use crate::preprocess::Preprocessed;

/// Device-resident bytes SpMM needs without chunking.
pub fn resident_bytes(a: &Csr, dim: usize) -> u64 {
    let condensed = a.nnz() as u64 * 4; // per-entry condensed index
    a.byte_size() + condensed + (a.ncols * dim) as u64 * 4 + (a.nrows * dim) as u64 * 4
}

/// Widest column panel that fits `budget` bytes (0 if even one column
/// cannot).
pub fn max_panel_dim(a: &Csr, budget: u64) -> usize {
    let fixed = a.byte_size() + a.nnz() as u64 * 4;
    if budget <= fixed {
        return 0;
    }
    let per_col = (a.ncols as u64 + a.nrows as u64) * 4;
    ((budget - fixed) / per_col) as usize
}

/// Outcome of a chunked run.
#[derive(Debug, Clone)]
pub struct ChunkedResult {
    /// The full product, identical to the unchunked result.
    pub z: DenseMatrix,
    /// Accumulated simulated run (one launch per panel).
    pub run: KernelRun,
    /// Panels executed.
    pub panels: usize,
    /// Peak device-resident bytes.
    pub peak_bytes: u64,
}

impl HcSpmm {
    /// Execute `Z = A·X` under a device-memory budget, splitting `X` into
    /// column panels. Returns `None` when even a single column cannot fit.
    pub fn spmm_chunked(
        &self,
        pre: &Preprocessed,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
        budget_bytes: u64,
    ) -> Option<ChunkedResult> {
        let panel = max_panel_dim(a, budget_bytes).min(x.cols);
        if panel == 0 {
            return None;
        }
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        let mut run = KernelRun::default();
        let mut panels = 0usize;
        let mut col = 0usize;
        while col < x.cols {
            let width = panel.min(x.cols - col);
            // Slice the panel out of X.
            let mut xp = DenseMatrix::zeros(x.rows, width);
            for r in 0..x.rows {
                xp.row_mut(r).copy_from_slice(&x.row(r)[col..col + width]);
            }
            let part = self.spmm_preprocessed(pre, a, &xp, dev);
            for r in 0..a.nrows {
                z.row_mut(r)[col..col + width].copy_from_slice(part.z.row(r));
            }
            run = run.then(&part.run);
            panels += 1;
            col += width;
        }
        let peak = a.byte_size()
            + a.nnz() as u64 * 4
            + (a.ncols * panel) as u64 * 4
            + (a.nrows * panel) as u64 * 4;
        Some(ChunkedResult {
            z,
            run,
            panels,
            peak_bytes: peak,
        })
    }
}

/// Convenience: run chunked if the unchunked footprint exceeds the budget,
/// plain otherwise.
pub fn spmm_auto(
    hc: &HcSpmm,
    pre: &Preprocessed,
    a: &Csr,
    x: &DenseMatrix,
    dev: &DeviceSpec,
    budget_bytes: u64,
) -> Option<SpmmResult> {
    if resident_bytes(a, x.cols) <= budget_bytes {
        Some(hc.spmm_preprocessed(pre, a, x, dev))
    } else {
        hc.spmm_chunked(pre, a, x, dev, budget_bytes)
            .map(|c| SpmmResult { z: c.z, run: c.run })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    fn setup() -> (Csr, DenseMatrix, DeviceSpec, HcSpmm, Preprocessed) {
        let a = gen::community(1_024, 8_000, 32, 0.9, 1);
        let x = DenseMatrix::random_features(1_024, 96, 2);
        let dev = DeviceSpec::rtx3090();
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, &dev);
        (a, x, dev, hc, pre)
    }

    #[test]
    fn chunked_matches_unchunked_numerically() {
        let (a, x, dev, hc, pre) = setup();
        let full = hc.spmm_preprocessed(&pre, &a, &x, &dev);
        // Budget forcing ~4 panels.
        let budget = resident_bytes(&a, 96) / 3;
        let chunked = hc.spmm_chunked(&pre, &a, &x, &dev, budget).expect("fits");
        assert!(
            chunked.panels >= 3,
            "expected multiple panels, got {}",
            chunked.panels
        );
        assert_eq!(chunked.z, full.z);
        assert!(chunked.peak_bytes <= budget);
    }

    #[test]
    fn chunking_costs_extra_launches_and_a_traffic() {
        let (a, x, dev, hc, pre) = setup();
        let full = hc.spmm_preprocessed(&pre, &a, &x, &dev);
        let budget = resident_bytes(&a, 96) / 3;
        let chunked = hc.spmm_chunked(&pre, &a, &x, &dev, budget).unwrap();
        assert_eq!(chunked.run.profile.launches as usize, chunked.panels);
        // Each panel re-reads the sparse structure: time strictly above the
        // single-shot run.
        assert!(chunked.run.time_ms > full.run.time_ms);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let (a, x, dev, hc, pre) = setup();
        assert!(hc.spmm_chunked(&pre, &a, &x, &dev, 1_000).is_none());
        assert!(spmm_auto(&hc, &pre, &a, &x, &dev, 1_000).is_none());
    }

    #[test]
    fn auto_picks_single_shot_when_it_fits() {
        let (a, x, dev, hc, pre) = setup();
        let r = spmm_auto(&hc, &pre, &a, &x, &dev, u64::MAX).unwrap();
        let full = hc.spmm_preprocessed(&pre, &a, &x, &dev);
        assert_eq!(r.run.profile.launches, 1);
        assert_eq!(r.z, full.z);
    }

    #[test]
    fn panel_math_is_consistent() {
        let (a, _, _, _, _) = setup();
        let full = resident_bytes(&a, 96);
        assert!(max_panel_dim(&a, full) >= 96);
        assert_eq!(max_panel_dim(&a, 0), 0);
    }
}
