//! Per-plan reusable execution workspace.
//!
//! Executing a [`Plan`](crate::Plan) used to re-derive its per-window
//! block costs — a full sweep over the partition — and, on the LOA path,
//! re-clone the permuted structure and re-build the permuted feature
//! matrix on *every* request. All of that is a pure function of the
//! plan's structure artifacts (plus the request's feature width and the
//! device), so a plan carries a [`Workspace`]: an interior-mutable arena
//! that caches block-cost vectors and recycles the LOA staging buffers
//! across launches. Serving traffic through a cached plan therefore
//! allocates O(1) scratch per request instead of O(graph).
//!
//! Reuse is bit-identical to fresh allocation by construction: every
//! recycled buffer is fully overwritten before it is read (the value
//! gather covers every permuted entry, the feature permutation writes
//! every row, the output remap writes every row), and cached block-cost
//! vectors are exactly the vector the builder closure would produce —
//! built once by that same closure. The differential tests in
//! `plan::tests` and `resilient::tests` pin this.
//!
//! Thread safety: the arena sits behind a facade `Mutex` (so the model
//! checker sees every acquisition), but buffers are *checked out* for the
//! duration of a request, so the lock is never held across kernel
//! execution. Two threads executing the same `Arc<Plan>` concurrently
//! simply miss the scratch (one of them allocates fresh) — correct, just
//! not amortized. The serving driver executes requests in order, so it
//! always reuses. The lock is declared *hazardous*
//! ([`Mutex::hazard`]): `DeviceSpec::execute*` calls
//! `assert_no_hazard_guards`, so holding this guard across a kernel
//! launch panics in debug builds instead of silently serializing.

use std::sync::Arc;

use hc_parallel::sync::{Mutex, MutexGuard};

use gpu_sim::{BlockCost, DeviceKind};
use graph_sparse::Csr;

use crate::sanitize::KernelFamily;

/// Workspace traffic counters (monotonic over the plan's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Block-cost vectors built from scratch (cache misses).
    pub cost_builds: u64,
    /// Executions served from a cached block-cost vector.
    pub cost_reuses: u64,
    /// Block-cost vectors seeded by the plan-patch path: an old plan's
    /// cached vector with only the dirty windows' entries recomputed.
    pub cost_splices: u64,
    /// LOA scratch checkouts that had to allocate fresh buffers.
    pub scratch_allocs: u64,
    /// LOA scratch checkouts satisfied by recycled buffers.
    pub scratch_reuses: u64,
}

impl WorkspaceStats {
    /// Merge another plan's counters into this one (the serving cache
    /// aggregates over its resident plans).
    pub fn add(&mut self, other: &WorkspaceStats) {
        self.cost_builds += other.cost_builds;
        self.cost_reuses += other.cost_reuses;
        self.cost_splices += other.cost_splices;
        self.scratch_allocs += other.scratch_allocs;
        self.scratch_reuses += other.scratch_reuses;
    }

    /// Fraction of block-cost requests served from cache (0 when none).
    pub fn cost_hit_rate(&self) -> f64 {
        let total = self.cost_builds + self.cost_reuses;
        if total == 0 {
            0.0
        } else {
            self.cost_reuses as f64 / total as f64
        }
    }
}

/// LOA staging buffers checked out of the workspace for one request.
/// Every buffer is fully overwritten before use, so recycled contents
/// can never leak into a result.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Permuted structure with the *previous* request's values; the value
    /// gather overwrites all of them. `None` on a cold workspace.
    pub ap: Option<Csr>,
    /// Storage for the permuted feature matrix.
    pub xp: Vec<f32>,
    /// Storage for the output remap.
    pub zret: Vec<f32>,
}

/// Key identifying one cached block-cost vector. Costs depend on the
/// executing family, the feature width, and the device model; the plan's
/// structure artifacts are fixed, so nothing else can vary them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CostKey {
    pub(crate) family: KernelFamily,
    pub(crate) dim: usize,
    pub(crate) dev: DeviceKind,
}

#[derive(Debug, Default)]
struct Inner {
    costs: Vec<(CostKey, Arc<Vec<BlockCost>>)>,
    scratch: Option<Scratch>,
    stats: WorkspaceStats,
}

/// Reusable per-plan arena: cached block-cost vectors plus recycled LOA
/// staging buffers. Interior-mutable so shared (`Arc`ed) plans amortize
/// across requests; see the module docs for the reuse contract.
#[derive(Debug)]
pub struct Workspace {
    inner: Mutex<Inner>,
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace {
            inner: Mutex::hazard("workspace-arena", Inner::default()),
        }
    }
}

/// Distinct (family, dim, device) cost vectors retained per plan. Four
/// families × a couple of feature widths in practice; the cap only guards
/// against a pathological caller cycling feature widths.
const MAX_COST_ENTRIES: usize = 8;

impl Workspace {
    /// The block-cost vector for `(family, dim, dev)`, building it with
    /// `build` on the first request and serving the cached copy after.
    /// The costs are value-independent, so the cached vector is exactly
    /// what `build` would return.
    pub fn block_costs(
        &self,
        family: KernelFamily,
        dim: usize,
        dev: DeviceKind,
        build: impl FnOnce() -> Vec<BlockCost>,
    ) -> Arc<Vec<BlockCost>> {
        let key = CostKey { family, dim, dev };
        {
            let mut g = self.lock();
            if let Some((_, blocks)) = g.costs.iter().find(|(k, _)| *k == key) {
                let blocks = Arc::clone(blocks);
                g.stats.cost_reuses += 1;
                return blocks;
            }
        }
        // Build outside the lock: cost derivation sweeps the partition
        // (possibly on the worker pool) and must not serialize other
        // executors of this plan. A concurrent racer may build the same
        // vector; both are identical, first insert wins.
        let blocks = Arc::new(build());
        let mut g = self.lock();
        if let Some((_, cached)) = g.costs.iter().find(|(k, _)| *k == key) {
            let cached = Arc::clone(cached);
            g.stats.cost_reuses += 1;
            return cached;
        }
        g.stats.cost_builds += 1;
        if g.costs.len() >= MAX_COST_ENTRIES {
            g.costs.remove(0); // oldest entry; deterministic
        }
        g.costs.push((key, Arc::clone(&blocks)));
        blocks
    }

    /// Check out the LOA staging buffers (empty on a cold workspace or
    /// when another request holds them). Pair with
    /// [`check_in`](Workspace::check_in) after the request completes.
    pub fn checkout(&self) -> Scratch {
        let mut g = self.lock();
        match g.scratch.take() {
            Some(s) => {
                g.stats.scratch_reuses += 1;
                s
            }
            None => {
                g.stats.scratch_allocs += 1;
                Scratch::default()
            }
        }
    }

    /// Return staging buffers for the next request to recycle.
    pub fn check_in(&self, scratch: Scratch) {
        self.lock().scratch = Some(scratch);
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> WorkspaceStats {
        self.lock().stats
    }

    /// The cached block-cost vectors, oldest first — what the plan-patch
    /// path splices dirty-window entries into. Shares the `Arc`s; the
    /// vectors themselves are immutable.
    pub(crate) fn snapshot_costs(&self) -> Vec<(CostKey, Arc<Vec<BlockCost>>)> {
        self.lock().costs.clone()
    }

    /// Seed a (fresh) workspace with pre-computed cost vectors, preserving
    /// the deterministic oldest-first eviction order of the entries as
    /// given. Entries beyond the retention cap are dropped from the front
    /// (oldest first), exactly as [`block_costs`](Workspace::block_costs)
    /// eviction would.
    pub(crate) fn seed_costs(&self, entries: Vec<(CostKey, Arc<Vec<BlockCost>>)>) {
        let mut g = self.lock();
        let skip = entries.len().saturating_sub(MAX_COST_ENTRIES);
        for e in entries.into_iter().skip(skip) {
            g.stats.cost_splices += 1;
            g.costs.push(e);
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The facade swallows poison: a poisoned lock only means a panic
        // unwound mid-checkout, and the arena never holds
        // partially-written state (buffers move in and out whole).
        self.inner.lock()
    }
}

impl Clone for Workspace {
    /// Cloning a plan starts it with a *cold* workspace: scratch buffers
    /// cannot be shared across independent plans, and counters restart.
    /// The first execution re-fills it.
    fn clone(&self) -> Workspace {
        Workspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_block() -> Vec<BlockCost> {
        vec![BlockCost {
            warps: 4,
            ..Default::default()
        }]
    }

    #[test]
    fn cost_cache_builds_once_per_key() {
        let ws = Workspace::default();
        let mut builds = 0;
        for _ in 0..3 {
            let b = ws.block_costs(KernelFamily::Cuda, 32, DeviceKind::Rtx3090, || {
                builds += 1;
                one_block()
            });
            assert_eq!(b.len(), 1);
        }
        assert_eq!(builds, 1);
        let s = ws.stats();
        assert_eq!((s.cost_builds, s.cost_reuses), (1, 2));
        // A different dim is a different key.
        ws.block_costs(KernelFamily::Cuda, 64, DeviceKind::Rtx3090, || {
            builds += 1;
            one_block()
        });
        assert_eq!(builds, 2);
        assert!((ws.stats().cost_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_cache_is_bounded() {
        let ws = Workspace::default();
        for dim in 0..(2 * MAX_COST_ENTRIES) {
            ws.block_costs(KernelFamily::Tensor, dim, DeviceKind::A100, one_block);
        }
        assert_eq!(ws.stats().cost_builds, 2 * MAX_COST_ENTRIES as u64);
        // Recent keys survive; evicted ones rebuild.
        ws.block_costs(
            KernelFamily::Tensor,
            2 * MAX_COST_ENTRIES - 1,
            DeviceKind::A100,
            || panic!("most recent key must still be cached"),
        );
    }

    #[test]
    fn scratch_round_trips_buffers() {
        let ws = Workspace::default();
        let s = ws.checkout();
        assert!(s.ap.is_none());
        ws.check_in(Scratch {
            ap: None,
            xp: vec![1.0; 8],
            zret: vec![2.0; 4],
        });
        let s = ws.checkout();
        assert_eq!(s.xp.len(), 8);
        assert_eq!(s.zret.len(), 4);
        let st = ws.stats();
        assert_eq!((st.scratch_allocs, st.scratch_reuses), (1, 1));
    }

    /// Satellite guard-token regression: the workspace arena lock is a
    /// hazard lock, and `DeviceSpec::execute` asserts none are held, so
    /// holding the guard across a kernel launch must panic in debug
    /// builds (and release the token cleanly during unwind).
    #[test]
    #[cfg(debug_assertions)]
    fn guard_across_execute_panics_in_debug() {
        use gpu_sim::DeviceSpec;
        let ws = Workspace::default();
        let dev = DeviceSpec::rtx3090();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = ws.lock(); // lint-sync: allow — deliberately held across execute
            dev.execute(&[]); // lint-sync: allow — this is the regression under test
        }));
        assert!(result.is_err(), "hazard guard across execute must panic");
        // The unwind released the token: a clean execute works again.
        assert_eq!(hc_parallel::sync::hazard_guards_held(), 0);
        dev.execute(&[]);
    }

    #[test]
    fn clone_is_cold() {
        let ws = Workspace::default();
        ws.block_costs(KernelFamily::Hybrid, 32, DeviceKind::Rtx3090, one_block);
        let cold = ws.clone();
        assert_eq!(cold.stats(), WorkspaceStats::default());
    }
}
