//! GPU-side preprocessing: window condensing + core classification.
//!
//! Before HC-SpMM can run, each row window must be condensed (non-zero
//! columns moved to the front, as TC-GNN/DTC-SpMM also require) and
//! classified by the selector. The paper adopts DTC-SpMM's GPU
//! preprocessing kernel, strips the parts HC-SpMM does not need, and
//! measures the remainder at ≈13× one SpMM execution (Appendix F) — paid
//! once per graph and amortized over the thousands of SpMM calls a GNN
//! training run performs.

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, KernelRun};
use graph_sparse::{Csr, RowWindow, RowWindowPartition};

use crate::features::WindowFeatures;
use crate::selector::{CoreChoice, Selector};

/// Preprocessing artifacts: the condensed partition plus the per-window core
/// assignment (the "boolean array" of §IV-C).
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Condensed row windows.
    pub partition: RowWindowPartition,
    /// Core choice per window (parallel to `partition.windows`).
    pub choices: Vec<CoreChoice>,
    /// Simulated cost of the preprocessing kernel.
    pub run: KernelRun,
}

impl Preprocessed {
    /// Number of windows assigned to each core type: `(cuda, tensor)`.
    pub fn window_split(&self) -> (usize, usize) {
        let cuda = self
            .choices
            .iter()
            .filter(|c| **c == CoreChoice::Cuda)
            .count();
        (cuda, self.choices.len() - cuda)
    }
}

/// Run the preprocessing kernel: condense every row window and classify it.
///
/// Cost model (one block per window, mirroring the DTC-SpMM-derived kernel):
/// the block loads the window's CSR slice, sorts/uniquifies its column ids
/// (bitonic-style, `nnz·log₂(nnz)` lane operations), writes the condensed
/// index arrays back, and evaluates the selector (two FMAs — negligible, as
/// Appendix F notes).
pub fn preprocess(a: &Csr, selector: &Selector, dev: &DeviceSpec) -> Preprocessed {
    let partition = RowWindowPartition::build(a);
    // Per-window classification + cost-model evaluation are independent, so
    // they run on the hc-parallel pool. `choices` stays parallel to
    // `windows` (empty windows get a choice but launch no block; survivors
    // keep window order).
    let work = a.nnz() as u64 + partition.len() as u64 * 16;
    let per_window = hc_parallel::par_map(&partition.windows, work, |w| {
        (
            selector.choose(&WindowFeatures::of(w)),
            window_preprocess_cost(w, dev),
        )
    });
    let mut blocks = Vec::with_capacity(partition.len());
    let mut choices = Vec::with_capacity(partition.len());
    for (choice, b) in per_window {
        choices.push(choice);
        if let Some(b) = b {
            blocks.push(b);
        }
    }
    let run = dev.execute(&blocks);
    Preprocessed {
        partition,
        choices,
        run,
    }
}

/// Preprocessing cost of one window under the DTC-SpMM-derived kernel
/// model, or `None` for an empty window (it launches no block). Factored
/// out of [`preprocess`] so the dynamic-graph patch path
/// ([`crate::Plan::patch`]) can bill exactly this model for the dirty
/// windows it re-condenses — and nothing for the windows it reuses.
pub fn window_preprocess_cost(w: &RowWindow, dev: &DeviceSpec) -> Option<BlockCost> {
    window_preprocess_cost_with(w, dev, true)
}

/// [`window_preprocess_cost`] with the compaction write-back format made
/// explicit: `compressed` bills the tile-metadata emission (occupancy
/// bitmaps + delta-coded columns, exactly `w.meta.encoded_bytes()` written
/// back), while `false` reconstructs the pre-compression kernel that wrote
/// per-entry condensed indices (`nnz·8 + nnz_cols·4` bytes) — the baseline
/// side of the `ext_tile_compress` experiment.
pub fn window_preprocess_cost_with(
    w: &RowWindow,
    dev: &DeviceSpec,
    compressed: bool,
) -> Option<BlockCost> {
    if w.is_empty() {
        return None;
    }
    let nnz = w.nnz as u64;
    let mut b = BlockCost {
        warps: 8,
        ..Default::default()
    };
    // Device-wide radix sort over (window, column) keys — 8 passes of
    // 4-bit digits, each reading and re-scattering every key/value pair
    // (8 bytes) with histogram atomics; scatters hit 32-byte sectors.
    const SORT_PASSES: u64 = 8;
    b.dram.transactions += nnz * 2 * SORT_PASSES;
    b.dram.bytes_loaded += nnz * 8 * SORT_PASSES;
    b.dram.bytes_stored += nnz * 8 * SORT_PASSES;
    b.cuda_fma_issues += nnz.div_ceil(32) * SORT_PASSES * 4; // digit extract + rank
    b.shared.loads += nnz.div_ceil(32) * SORT_PASSES;
    b.shared.stores += nnz.div_ceil(32) * SORT_PASSES;
    // Compaction pass: detect unique columns and write the window metadata
    // back — the compressed tile form emits the exact encoded bytes of this
    // window's bitmaps + column stream; the legacy form wrote a u32 tile
    // offset + u32 condensed index per entry plus the unique-column array.
    let meta_bytes = if compressed {
        w.meta_bytes() as u64
    } else {
        nnz * 8 + w.nnz_cols() as u64 * 4
    };
    b.dram.transactions += coalesced_transactions(meta_bytes, dev.transaction_bytes);
    b.dram.bytes_stored += meta_bytes;
    // Classification (two FMAs) closes the block.
    b.cuda_fma_issues += 2;
    Some(b)
}

/// Classify every window with the *oracle*: run both cost models and pick
/// the cheaper core type for the given dense dimension. This bounds what
/// any selector could achieve (the paper claims >90 % accuracy for the LR
/// model; this quantifies what the missing <10 % costs).
pub fn preprocess_oracle(a: &Csr, dim: usize, dev: &DeviceSpec) -> Preprocessed {
    use crate::kernels::cuda::CudaSpmm;
    use crate::kernels::tensor::TensorSpmm;
    let base = preprocess(a, &Selector::DEFAULT, dev);
    let cuda = CudaSpmm::optimized();
    let tensor = TensorSpmm::optimized();
    let n = base.partition.len();
    let choices = hc_parallel::par_map(&base.partition.windows, n as u64 * 128, |w| {
        if w.is_empty() {
            return CoreChoice::Cuda;
        }
        let bc = cuda.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev);
        let bt = tensor.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev);
        if bc.cycles(dev) <= bt.cycles(dev) {
            CoreChoice::Cuda
        } else {
            CoreChoice::Tensor
        }
    });
    Preprocessed { choices, ..base }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SpmmKernel;
    use crate::HcSpmm;
    use graph_sparse::{gen, DenseMatrix};

    #[test]
    fn classifies_every_window() {
        let a = gen::erdos_renyi(200, 600, 1);
        let dev = DeviceSpec::rtx3090();
        let p = preprocess(&a, &Selector::DEFAULT, &dev);
        assert_eq!(p.choices.len(), p.partition.len());
        let (c, t) = p.window_split();
        assert_eq!(c + t, p.choices.len());
    }

    #[test]
    fn preprocessing_is_a_moderate_multiple_of_one_spmm() {
        // Appendix F: ≈13× a single SpMM execution on average. We assert the
        // same order of magnitude (2×–60×) rather than the exact ratio.
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(4096, 30_000, 128, 0.85, 2);
        let x = DenseMatrix::random_features(4096, 32, 3);
        let pre = preprocess(&a, &Selector::DEFAULT, &dev);
        let spmm = HcSpmm::default().spmm(&a, &x, &dev);
        let ratio = pre.run.time_ms / spmm.run.time_ms;
        assert!(
            (1.0..80.0).contains(&ratio),
            "preprocess/spmm ratio {ratio} out of plausible band"
        );
    }

    #[test]
    fn oracle_never_loses_to_the_model() {
        // By construction the oracle picks the per-window cheaper path, so
        // the summed block cycles cannot exceed the model's.
        let dev = DeviceSpec::rtx3090();
        let a = gen::molecules(2048, 5000, 3);
        let hc = crate::HcSpmm::default();
        let model = hc.preprocess(&a, &dev);
        let oracle = preprocess_oracle(&a, 64, &dev);
        let cost = |pre: &Preprocessed| dev.execute(&hc.block_costs(pre, 64, &dev)).makespan_cycles;
        assert!(cost(&oracle) <= cost(&model) * 1.0001);
    }

    #[test]
    fn empty_matrix_preprocesses_cleanly() {
        let dev = DeviceSpec::rtx3090();
        let p = preprocess(&Csr::empty(64, 64), &Selector::DEFAULT, &dev);
        assert_eq!(p.partition.len(), 4);
        assert_eq!(p.run.profile.blocks, 0);
    }
}
