//! Kernel-sanitizer driver: runs the `gpu_sim::sanitizer` battery over the
//! window traces of every kernel family.
//!
//! Each shipped kernel family exposes a sanitizer-grade trace emitter next
//! to its analytic cost function (`window_trace` beside
//! `window_block_cost`); this module samples a configurable number of row
//! windows from a graph, pairs each window's trace with the cost the kernel
//! bills for it, and reports what racecheck / memcheck / synccheck / the
//! cost-conformance lint find. The CLI's `sanitize` subcommand is a thin
//! wrapper around [`sanitize_graph`].

use gpu_sim::sanitizer::{sanitize_block, Finding, SanitizerConfig, SanitizerReport};
use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, RowWindowPartition};

use crate::kernels::straightforward::StraightforwardHybrid;
use crate::{CudaSpmm, HcSpmm, TensorSpmm};

/// The four shipped kernel families the sanitizer covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// The §IV-A per-tile hybrid (Fig. 4a).
    Straightforward,
    /// The CUDA-core path (Algorithm 3).
    Cuda,
    /// The Tensor-core path (Algorithm 4).
    Tensor,
    /// HC-SpMM — selector-dispatched row windows.
    Hybrid,
}

impl KernelFamily {
    /// All families, in report order.
    pub const ALL: [KernelFamily; 4] = [
        KernelFamily::Straightforward,
        KernelFamily::Cuda,
        KernelFamily::Tensor,
        KernelFamily::Hybrid,
    ];

    /// Stable lowercase name (CLI flag values / report labels).
    pub fn name(&self) -> &'static str {
        match self {
            KernelFamily::Straightforward => "straightforward",
            KernelFamily::Cuda => "cuda",
            KernelFamily::Tensor => "tensor",
            KernelFamily::Hybrid => "hybrid",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<KernelFamily> {
        KernelFamily::ALL.iter().copied().find(|f| f.name() == s)
    }
}

/// How many row windows to sample per family.
#[derive(Debug, Clone, Copy)]
pub struct SampleSpec {
    /// Upper bound on sampled windows (evenly spaced over the partition's
    /// non-empty windows). `usize::MAX` checks everything.
    pub max_windows: usize,
}

impl Default for SampleSpec {
    fn default() -> Self {
        // Windows of one graph share their structure; a spread sample
        // catches shape-dependent bugs without tracing every block.
        SampleSpec { max_windows: 48 }
    }
}

/// Sanitizer outcome for one kernel family on one graph.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// Which family ran.
    pub family: KernelFamily,
    /// Windows actually traced.
    pub windows_checked: usize,
    /// Total trace ops examined.
    pub ops_checked: usize,
    /// Findings, tagged with the window index they occurred in.
    pub findings: Vec<(usize, Finding)>,
    /// Findings dropped by the per-check cap, summed over windows.
    pub suppressed: usize,
}

impl FamilyReport {
    /// True when every checked window came back clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }
}

/// Indices of up to `max` evenly-spaced elements of `0..n`.
fn sample_indices(n: usize, max: usize) -> Vec<usize> {
    if n <= max || max == 0 {
        return (0..n).collect();
    }
    (0..max).map(|i| i * n / max).collect()
}

/// Run the sanitizer battery for one kernel family over a sample of the
/// graph's row windows.
pub fn sanitize_family(
    family: KernelFamily,
    a: &Csr,
    dim: usize,
    dev: &DeviceSpec,
    cfg: &SanitizerConfig,
    sample: SampleSpec,
) -> FamilyReport {
    let part = RowWindowPartition::build(a);
    let windows: Vec<usize> = part
        .windows
        .iter()
        .enumerate()
        .filter(|(_, w)| !w.is_empty())
        .map(|(i, _)| i)
        .collect();
    let picked = sample_indices(windows.len(), sample.max_windows);

    // The hybrid family needs the selector's per-window choices.
    let hc = HcSpmm::default();
    let pre = matches!(family, KernelFamily::Hybrid).then(|| hc.preprocess(a, dev));

    let mut report = FamilyReport {
        family,
        windows_checked: 0,
        ops_checked: 0,
        findings: Vec::new(),
        suppressed: 0,
    };
    for &pi in &picked {
        let wi = windows[pi];
        let w = &part.windows[wi];
        let (cost, trace) = match family {
            KernelFamily::Straightforward => {
                let k = StraightforwardHybrid::default();
                (k.window_cost(w, dim, dev), k.window_trace(w, dim, dev))
            }
            KernelFamily::Cuda => {
                let k = CudaSpmm::optimized();
                (
                    k.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                    k.window_trace(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                )
            }
            KernelFamily::Tensor => {
                let k = TensorSpmm::optimized();
                (
                    k.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                    k.window_trace(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                )
            }
            KernelFamily::Hybrid => {
                let choice = pre.as_ref().expect("preprocessed above").choices[wi];
                (
                    hc.window_cost(w, choice, dim, dev),
                    hc.window_trace(w, choice, dim, dev),
                )
            }
        };
        let block = sanitize_block(&trace, Some(&cost), dev, cfg);
        absorb(&mut report, wi, block);
    }
    report
}

/// Counter-mode cost-conformance sweep for one family: every non-empty row
/// window is re-counted through the family's counter-mode emitter — no
/// per-op event vectors are ever materialized — and diffed against the
/// [`BlockCost`](gpu_sim::BlockCost) the kernel bills for it. Cheap enough
/// to cover *all* windows; the race / bounds / barrier analyses still need
/// full event traces and stay behind [`sanitize_family`].
pub fn conformance_family(
    family: KernelFamily,
    a: &Csr,
    dim: usize,
    dev: &DeviceSpec,
    cfg: &SanitizerConfig,
) -> FamilyReport {
    use gpu_sim::sanitizer::{cost_conformance_counters, TraceCounters};

    let part = RowWindowPartition::build(a);
    let hc = HcSpmm::default();
    let pre = matches!(family, KernelFamily::Hybrid).then(|| hc.preprocess(a, dev));

    let mut report = FamilyReport {
        family,
        windows_checked: 0,
        ops_checked: 0,
        findings: Vec::new(),
        suppressed: 0,
    };
    for (wi, w) in part.windows.iter().enumerate() {
        if w.is_empty() {
            continue;
        }
        let (cost, counters) = match family {
            KernelFamily::Straightforward => {
                let k = StraightforwardHybrid::default();
                (k.window_cost(w, dim, dev), k.window_counters(w, dim, dev))
            }
            KernelFamily::Cuda => {
                let k = CudaSpmm::optimized();
                (
                    k.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                    k.window_counters(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                )
            }
            KernelFamily::Tensor => {
                let k = TensorSpmm::optimized();
                (
                    k.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                    k.window_counters(w.nnz, w.nnz_cols(), w.rows, dim, dev),
                )
            }
            KernelFamily::Hybrid => {
                let choice = pre.as_ref().expect("preprocessed above").choices[wi];
                (
                    hc.window_cost(w, choice, dim, dev),
                    hc.window_counters(w, choice, dim, dev),
                )
            }
        };
        let mut block = SanitizerReport {
            ops_checked: counters.ops() as usize,
            ..SanitizerReport::default()
        };
        cost_conformance_counters(&TraceCounters::from(&counters), &cost, cfg, &mut block);
        absorb(&mut report, wi, block);
    }
    report
}

/// Merge one block's report into the family report.
fn absorb(report: &mut FamilyReport, window: usize, block: SanitizerReport) {
    report.windows_checked += 1;
    report.ops_checked += block.ops_checked;
    report.suppressed += block.suppressed;
    report
        .findings
        .extend(block.findings.into_iter().map(|f| (window, f)));
}

/// Run every kernel family over one graph.
pub fn sanitize_graph(
    a: &Csr,
    dim: usize,
    dev: &DeviceSpec,
    cfg: &SanitizerConfig,
    sample: SampleSpec,
) -> Vec<FamilyReport> {
    KernelFamily::ALL
        .iter()
        .map(|&f| sanitize_family(f, a, dim, dev, cfg, sample))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn all_families_clean_on_mixed_graph() {
        let a = gen::community(1024, 8_000, 32, 0.9, 11);
        let dev = DeviceSpec::rtx3090();
        let cfg = SanitizerConfig::default();
        for report in sanitize_graph(&a, 32, &dev, &cfg, SampleSpec::default()) {
            assert!(
                report.is_clean(),
                "{}: {:?}",
                report.family.name(),
                report.findings
            );
            assert!(report.windows_checked > 0);
            assert!(report.ops_checked > 0);
        }
    }

    #[test]
    fn unaligned_dim_and_other_devices_stay_clean() {
        // dim 47 exercises the generalized tail; the A100 has a different
        // shared capacity.
        let a = gen::molecules(2_048, 5_000, 13);
        let cfg = SanitizerConfig::default();
        for dev in [DeviceSpec::rtx3090(), DeviceSpec::a100()] {
            for report in sanitize_graph(&a, 47, &dev, &cfg, SampleSpec { max_windows: 16 }) {
                assert!(
                    report.is_clean(),
                    "{} on {:?}: {:?}",
                    report.family.name(),
                    dev.kind,
                    report.findings
                );
            }
        }
    }

    #[test]
    fn counter_mode_conformance_sweep_is_clean_for_all_families() {
        let a = gen::community(1024, 8_000, 32, 0.9, 11);
        let dev = DeviceSpec::rtx3090();
        let cfg = SanitizerConfig::default();
        for family in KernelFamily::ALL {
            let r = conformance_family(family, &a, 32, &dev, &cfg);
            assert!(r.is_clean(), "{}: {:?}", r.family.name(), r.findings);
            // The sweep covers every non-empty window, not a sample.
            assert!(r.windows_checked >= 48, "{}", r.windows_checked);
            assert!(r.ops_checked > 0);
        }
    }

    #[test]
    fn sampling_caps_window_count() {
        let a = gen::erdos_renyi(2_048, 12_000, 17);
        let dev = DeviceSpec::rtx3090();
        let cfg = SanitizerConfig::default();
        let r = sanitize_family(
            KernelFamily::Cuda,
            &a,
            32,
            &dev,
            &cfg,
            SampleSpec { max_windows: 5 },
        );
        assert_eq!(r.windows_checked, 5);
    }

    #[test]
    fn family_names_round_trip() {
        for f in KernelFamily::ALL {
            assert_eq!(KernelFamily::parse(f.name()), Some(f));
        }
        assert_eq!(KernelFamily::parse("nope"), None);
    }
}
