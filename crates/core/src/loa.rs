//! LOA — the graph layout-optimization algorithm (§V-B, Algorithms 5/6).
//!
//! Real graph layouts leave most row windows sparse and wide, so few qualify
//! for Tensor cores (Fig. 8). LOA rebuilds each row window greedily: start
//! from the unvisited vertex whose neighborhood begins earliest, then 15
//! times append the vertex (from a bounded search window `VW` over the
//! sorted order) that maximizes the window's *computing intensity*
//! (Eq. 5 / Eq. 6), tie-breaking by degree. The incremental `cns` counters
//! of Algorithm 6 avoid recomputing set unions: after appending `v_max`,
//! only the *new* columns (`Resi`) propagate +1 to their neighbors, so each
//! edge is touched O(1) times per window.
//!
//! The output is a vertex permutation; applying it with
//! [`Csr::permute_symmetric`] yields the same graph with denser windows.

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, WINDOW_ROWS};

/// LOA configuration.
///
/// ```
/// use graph_sparse::gen;
/// use hc_core::Loa;
///
/// let scattered = gen::scatter_relabel(&gen::molecules(512, 1_200, 1), 2);
/// let (optimized, report) = Loa::default().optimize(&scattered);
/// assert_eq!(optimized.nnz(), scattered.nnz()); // same graph, new layout
/// assert!(report.ops > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Loa {
    /// Vertices window: how many candidates (in sorted order, from the seed
    /// vertex) are scanned per append step.
    pub vw: usize,
}

impl Default for Loa {
    fn default() -> Self {
        Loa { vw: 64 }
    }
}

/// Result of a LOA run.
#[derive(Debug, Clone)]
pub struct LoaReport {
    /// New vertex order: `perm[new_id] = old_id`.
    pub perm: Vec<u32>,
    /// Elementary operations performed (counter increments + candidate
    /// evaluations) — drives the preprocessing-overhead model of Fig. 16.
    pub ops: u64,
    /// Modeled wall-clock seconds on the host CPU (LOA runs offline, once,
    /// regardless of epochs/layers).
    pub seconds: f64,
}

/// Host operations per second assumed by the overhead model. LOA's inner
/// loop is dominated by random-access increments of the `cns` counter array
/// (a cache miss per distinct neighbour), so effective throughput is far
/// below the core's issue rate.
const HOST_OPS_PER_SEC: f64 = 5.0e8;

impl Loa {
    /// Run LOA on a symmetric adjacency matrix, producing the reordering
    /// permutation and the overhead estimate.
    pub fn run(&self, a: &Csr) -> LoaReport {
        assert_eq!(a.nrows, a.ncols, "LOA expects a square adjacency matrix");
        let n = a.nrows;
        let mut ops: u64 = 0;

        // soList: vertices sorted by the smallest index in their
        // neighborhood (isolated vertices last).
        let mut so_list: Vec<u32> = (0..n as u32).collect();
        let min_nbr =
            |v: u32| -> u32 { a.row_cols(v as usize).first().copied().unwrap_or(u32::MAX) };
        so_list.sort_by_key(|&v| (min_nbr(v), v));
        // Position of each vertex in soList (for the VW range scan).
        let mut pos_of = vec![0u32; n];
        for (i, &v) in so_list.iter().enumerate() {
            pos_of[v as usize] = i as u32;
        }

        let mut visited = vec![false; n];
        let mut in_all_cols = vec![false; n]; // membership of allCols
        let mut cns = vec![0u32; n]; // |N(v) ∩ allCols| per candidate
        let mut touched_cols: Vec<u32> = Vec::new(); // lazy reset of in_all_cols
        let mut touched_cns: Vec<u32> = Vec::new(); // lazy reset of cns

        let mut perm: Vec<u32> = Vec::with_capacity(n);
        let mut cursor = 0usize; // first possibly-unvisited soList position

        while perm.len() < n {
            // Seed: first unvisited vertex in soList.
            while cursor < n && visited[so_list[cursor] as usize] {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            let v0 = so_list[cursor];
            visited[v0 as usize] = true;
            perm.push(v0);

            // Window state.
            for &t in &touched_cols {
                in_all_cols[t as usize] = false;
            }
            touched_cols.clear();
            for &t in &touched_cns {
                cns[t as usize] = 0;
            }
            touched_cns.clear();

            let mut cur_eles = a.degree(v0 as usize) as f64;
            let mut cur_cols;
            let mut resi: Vec<u32> = a.row_cols(v0 as usize).to_vec();
            for &c in &resi {
                in_all_cols[c as usize] = true;
                touched_cols.push(c);
            }
            cur_cols = resi.len() as f64;
            let v0_pos = pos_of[v0 as usize] as usize;

            for _ in 1..WINDOW_ROWS {
                // Propagate the newly added columns into the cns counters
                // (Alg. 6 lines 7–9): u ∈ Resi, w ∈ N(u) ⇒ w.cns += 1.
                for &u in &resi {
                    for &w in a.row_cols(u as usize) {
                        if cns[w as usize] == 0 {
                            touched_cns.push(w);
                        }
                        cns[w as usize] += 1;
                        ops += 1;
                    }
                }

                // Scan the vertices window for the best candidate
                // (lines 10–14), tie-breaking by degree (Alg. 5 line 7).
                let mut best: Option<(f64, usize, u32)> = None; // (P, degree, v)
                let hi = (v0_pos + self.vw).min(n);
                for &v in &so_list[v0_pos..hi] {
                    ops += 1;
                    if visited[v as usize] {
                        continue;
                    }
                    let dv = a.degree(v as usize) as f64;
                    let denom = cur_cols + dv - cns[v as usize] as f64;
                    let p = if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        (cur_eles + dv) / denom
                    };
                    let better = match best {
                        None => true,
                        Some((bp, bd, _)) => p > bp || (p == bp && a.degree(v as usize) > bd),
                    };
                    if better {
                        best = Some((p, a.degree(v as usize), v));
                    }
                }
                let Some((_, _, vmax)) = best else {
                    break; // VW exhausted; window stays short
                };

                // Append vmax and update the incremental state
                // (lines 15–19).
                visited[vmax as usize] = true;
                perm.push(vmax);
                resi.clear();
                for &c in a.row_cols(vmax as usize) {
                    ops += 1;
                    if !in_all_cols[c as usize] {
                        in_all_cols[c as usize] = true;
                        touched_cols.push(c);
                        resi.push(c);
                    }
                }
                cur_eles += a.degree(vmax as usize) as f64;
                cur_cols += resi.len() as f64;
            }
        }

        LoaReport {
            seconds: ops as f64 / HOST_OPS_PER_SEC,
            ops,
            perm,
        }
    }

    /// Convenience: run LOA and return the reordered matrix with the report.
    pub fn optimize(&self, a: &Csr) -> (Csr, LoaReport) {
        let rep = self.run(a);
        (a.permute_symmetric(&rep.perm), rep)
    }
}

/// Algorithm 5 — the unoptimized layout-reformat baseline.
///
/// Identical greedy objective to [`Loa`] (Algorithm 6), but each candidate's
/// computing intensity is evaluated by recomputing the full column-set union
/// from scratch — the redundant work §V-B's "Efficiency Optimization"
/// removes with incremental `cns` counters. Kept for the equivalence test
/// and the Alg. 5 vs Alg. 6 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct LoaBrute {
    /// Candidate window width, as in [`Loa`].
    pub vw: usize,
}

impl Default for LoaBrute {
    fn default() -> Self {
        LoaBrute {
            vw: Loa::default().vw,
        }
    }
}

impl LoaBrute {
    /// Run the brute-force Algorithm 5. Produces the same permutation as
    /// [`Loa::run`] (the greedy choices are identical); `ops` counts the
    /// redundant set-union work.
    pub fn run(&self, a: &Csr) -> LoaReport {
        assert_eq!(a.nrows, a.ncols, "LOA expects a square adjacency matrix");
        let n = a.nrows;
        let mut ops: u64 = 0;

        let mut so_list: Vec<u32> = (0..n as u32).collect();
        let min_nbr =
            |v: u32| -> u32 { a.row_cols(v as usize).first().copied().unwrap_or(u32::MAX) };
        so_list.sort_by_key(|&v| (min_nbr(v), v));
        let mut pos_of = vec![0u32; n];
        for (i, &v) in so_list.iter().enumerate() {
            pos_of[v as usize] = i as u32;
        }

        let mut visited = vec![false; n];
        let mut perm: Vec<u32> = Vec::with_capacity(n);
        let mut cursor = 0usize;
        let mut in_cols = vec![false; n];
        let mut cols_list: Vec<u32> = Vec::new();

        while perm.len() < n {
            while cursor < n && visited[so_list[cursor] as usize] {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            let v0 = so_list[cursor];
            visited[v0 as usize] = true;
            perm.push(v0);

            for &c in &cols_list {
                in_cols[c as usize] = false;
            }
            cols_list.clear();
            let mut rw: Vec<u32> = vec![v0];
            let mut cur_eles = a.degree(v0 as usize) as f64;
            for &c in a.row_cols(v0 as usize) {
                if !in_cols[c as usize] {
                    in_cols[c as usize] = true;
                    cols_list.push(c);
                }
            }
            let v0_pos = pos_of[v0 as usize] as usize;

            for _ in 1..WINDOW_ROWS {
                let mut best: Option<(f64, usize, u32)> = None;
                let hi = (v0_pos + self.vw).min(n);
                for &v in &so_list[v0_pos..hi] {
                    if visited[v as usize] {
                        continue;
                    }
                    // Brute-force union: walk N(v) against the membership
                    // bitmap (re-walked for EVERY candidate, EVERY step —
                    // the redundancy Algorithm 6 eliminates).
                    let mut new_cols = 0usize;
                    for &c in a.row_cols(v as usize) {
                        ops += 1;
                        if !in_cols[c as usize] {
                            new_cols += 1;
                        }
                    }
                    let dv = a.degree(v as usize) as f64;
                    let denom = cols_list.len() as f64 + new_cols as f64;
                    let p = if denom <= 0.0 {
                        f64::INFINITY
                    } else {
                        (cur_eles + dv) / denom
                    };
                    let better = match best {
                        None => true,
                        Some((bp, bd, _)) => p > bp || (p == bp && a.degree(v as usize) > bd),
                    };
                    if better {
                        best = Some((p, a.degree(v as usize), v));
                    }
                }
                let Some((_, _, vmax)) = best else { break };
                visited[vmax as usize] = true;
                perm.push(vmax);
                rw.push(vmax);
                cur_eles += a.degree(vmax as usize) as f64;
                for &c in a.row_cols(vmax as usize) {
                    ops += 1;
                    if !in_cols[c as usize] {
                        in_cols[c as usize] = true;
                        cols_list.push(c);
                    }
                }
            }
        }

        LoaReport {
            seconds: ops as f64 / HOST_OPS_PER_SEC,
            ops,
            perm,
        }
    }
}

/// Fraction of the device's row windows the selector assigns to Tensor cores
/// — the Fig. 15 quantity. (Helper used by experiments; lives here to keep
/// the Fig. 15 definition next to LOA.)
pub fn tensor_window_fraction(
    a: &Csr,
    selector: &crate::selector::Selector,
    dev: &DeviceSpec,
) -> f64 {
    let pre = crate::preprocess::preprocess(a, selector, dev);
    let (c, t) = pre.window_split();
    if c + t == 0 {
        return 0.0;
    }
    t as f64 / (c + t) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{gen, DenseMatrix, RowWindowPartition};

    fn is_permutation(perm: &[u32], n: usize) -> bool {
        if perm.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &p in perm {
            if seen[p as usize] {
                return false;
            }
            seen[p as usize] = true;
        }
        true
    }

    #[test]
    fn output_is_a_permutation() {
        for seed in 0..3 {
            let a = gen::erdos_renyi(200, 800, seed);
            let rep = Loa::default().run(&a);
            assert!(is_permutation(&rep.perm, 200));
        }
    }

    #[test]
    fn handles_isolated_vertices() {
        // 50 vertices, edges only among the first 20.
        let a = gen::erdos_renyi(20, 60, 1);
        let mut coo = a.to_coo();
        coo.nrows = 50;
        coo.ncols = 50;
        let a = coo.to_csr();
        let rep = Loa::default().run(&a);
        assert!(is_permutation(&rep.perm, 50));
    }

    #[test]
    fn improves_computing_intensity_on_scattered_graphs() {
        // A scattered community graph: LOA should regroup the communities.
        let base = gen::community(1024, 6000, 64, 0.95, 3);
        let scattered = gen::scatter_relabel(&base, 4);
        let before = RowWindowPartition::build(&scattered).mean_computing_intensity();
        let (opt, _) = Loa::default().optimize(&scattered);
        let after = RowWindowPartition::build(&opt).mean_computing_intensity();
        assert!(
            after > before * 1.2,
            "LOA should densify windows: {before:.3} → {after:.3}"
        );
    }

    #[test]
    fn increases_tensor_eligible_windows() {
        // Fig. 15: more windows suit Tensor cores after LOA.
        let dev = DeviceSpec::rtx3090();
        let base = gen::community(2048, 24_000, 128, 0.95, 5);
        let scattered = gen::scatter_relabel(&base, 6);
        let sel = crate::selector::Selector::DEFAULT;
        let before = tensor_window_fraction(&scattered, &sel, &dev);
        let (opt, _) = Loa::default().optimize(&scattered);
        let after = tensor_window_fraction(&opt, &sel, &dev);
        assert!(
            after >= before,
            "tensor fraction should not fall: {before:.3} → {after:.3}"
        );
    }

    #[test]
    fn reordered_graph_computes_identical_results_up_to_permutation() {
        let a = gen::community(256, 2000, 16, 0.9, 7);
        let x = DenseMatrix::random_features(256, 16, 8);
        let rep = Loa::default().run(&a);
        let b = a.permute_symmetric(&rep.perm);
        // Permute X rows the same way, compute, and un-permute the result.
        let mut xp = DenseMatrix::zeros(256, 16);
        for (new, &old) in rep.perm.iter().enumerate() {
            xp.row_mut(new).copy_from_slice(x.row(old as usize));
        }
        let zp = b.spmm_reference(&xp);
        let z = a.spmm_reference(&x);
        // Permutation changes the summation order, so allow f32 slack.
        for (new, &old) in rep.perm.iter().enumerate() {
            for (a_v, b_v) in zp.row(new).iter().zip(z.row(old as usize)) {
                assert!((a_v - b_v).abs() < 1e-4, "{a_v} vs {b_v}");
            }
        }
    }

    #[test]
    fn overhead_scales_with_edges() {
        let small = gen::erdos_renyi(200, 500, 1);
        let large = gen::erdos_renyi(200, 3000, 1);
        let rs = Loa::default().run(&small);
        let rl = Loa::default().run(&large);
        assert!(rl.ops > rs.ops);
        assert!(rl.seconds > 0.0);
    }

    #[test]
    fn brute_force_and_optimized_agree() {
        // Algorithm 6 is an *optimization* of Algorithm 5: identical greedy
        // decisions, fewer operations.
        for seed in [1u64, 2, 3] {
            let a = gen::community(300, 1500, 12, 0.9, seed);
            let opt = Loa::default().run(&a);
            let brute = LoaBrute::default().run(&a);
            assert_eq!(opt.perm, brute.perm, "divergent greedy at seed {seed}");
        }
    }

    #[test]
    fn optimized_does_less_work_on_dense_graphs() {
        // The cns trick touches each edge O(1) times per window; the brute
        // force re-walks candidate neighborhoods for all 15 append steps.
        let a = gen::community(1024, 20_000, 16, 0.9, 5);
        let opt = Loa::default().run(&a);
        let brute = LoaBrute::default().run(&a);
        assert!(
            brute.ops > opt.ops,
            "brute {} should exceed optimized {}",
            brute.ops,
            opt.ops
        );
    }

    #[test]
    fn vw_bounds_candidate_scanning() {
        let a = gen::erdos_renyi(500, 2000, 2);
        let narrow = Loa { vw: 16 }.run(&a);
        let wide = Loa { vw: 256 }.run(&a);
        assert!(wide.ops > narrow.ops);
        assert!(is_permutation(&wide.perm, 500));
        assert!(is_permutation(&narrow.perm, 500));
    }
}
