//! SpMM kernel interface shared by HC-SpMM and every baseline.

pub mod cuda;
pub mod hybrid;
pub mod straightforward;
pub mod tensor;

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};

/// Output of one simulated SpMM: the numerical result plus the simulated
/// execution record.
#[derive(Debug, Clone)]
pub struct SpmmResult {
    /// `Z = A · X`, computed for real.
    pub z: DenseMatrix,
    /// Simulated time and counters.
    pub run: KernelRun,
}

/// A kernel that multiplies a sparse matrix by a dense matrix on the
/// simulated device. Implemented by HC-SpMM and by all comparison kernels in
/// the `baselines` crate.
pub trait SpmmKernel {
    /// Kernel name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Execute `Z = A · X`. Preprocessing (format conversion, window
    /// condensing, core classification) is *excluded*, matching the paper's
    /// measurement protocol (§VI-B1); kernels with a preprocessing phase
    /// expose it separately.
    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult;

    /// Timing-only execution: the simulated run record without the dense
    /// numeric result. The simulated time of every kernel here is a pure
    /// function of the block costs — it never depends on `Z` — so timing
    /// experiments (Fig. 10, Tables VII/X/XVI) use this entry point and
    /// skip materializing outputs they would discard. Implementations must
    /// return exactly `self.spmm(a, x, dev).run`; the default does
    /// literally that, overrides just skip the numeric phase.
    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> KernelRun {
        self.spmm(a, x, dev).run
    }
}

/// Numerical check helper: asserts a kernel result matches the reference
/// SpMM within `tol` (quantized paths need a loose tolerance).
pub fn assert_matches_reference(a: &Csr, x: &DenseMatrix, z: &DenseMatrix, tol: f32) {
    let want = a.spmm_reference(x);
    let diff = want.max_abs_diff(z);
    assert!(
        diff <= tol,
        "kernel output deviates from reference by {diff} (tol {tol})"
    );
}
