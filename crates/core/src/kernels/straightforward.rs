//! The §IV-A *straightforward* combination strategy (Fig. 4a) — implemented
//! so the paper's argument against it can be measured, not just asserted.
//!
//! Instead of dispatching whole row windows, this kernel rearranges each
//! window's columns by per-column density, splits the condensed window into
//! 16×8 tiles, and picks a core type *per tile*: dense leading tiles go to
//! Tensor cores, the sparse tail to CUDA cores. The paper identifies three
//! costs that make this worse than the row-window unit:
//!
//! 1. **Result merging**: Tensor tiles accumulate in register fragments
//!    while CUDA tiles write shared/global memory; combining them needs an
//!    extra shared-memory round trip and add pass per window (measured at
//!    up to 31 % overhead — footnote 4).
//! 2. **Split edge storage**: each window's entries must be partitioned
//!    into a Tensor-ordered segment and a CSR segment, hurting locality and
//!    preprocessing cost.
//! 3. **Per-tile times are too small to measure**, leaving sparsity as the
//!    only usable selection feature (footnote 5).

use gpu_sim::trace::{BlockTrace, CounterTrace, TraceSink, WarpOp};
use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, Precision};
use graph_sparse::{Csr, DenseMatrix, RowWindow, RowWindowPartition};

use super::cuda::CudaSpmm;
use super::tensor::TensorSpmm;
use super::{SpmmKernel, SpmmResult};

/// The Fig. 4(a) per-tile hybrid kernel.
#[derive(Debug, Clone, Copy)]
pub struct StraightforwardHybrid {
    /// Tensor-tile density threshold: a 16×8 tile runs on Tensor cores when
    /// its fill ratio is at least this (sparsity is the only feature
    /// available at tile granularity).
    pub tile_density_threshold: f64,
}

impl Default for StraightforwardHybrid {
    fn default() -> Self {
        StraightforwardHybrid {
            tile_density_threshold: 0.25,
        }
    }
}

/// How one window's 16×8 tiles split across core types after the Fig. 4(a)
/// density rearrangement.
#[derive(Debug, Clone, Copy, Default)]
pub struct TileSplit {
    /// Tiles dense enough for Tensor cores.
    pub tensor_tiles: usize,
    /// Non-zeros inside the Tensor tiles.
    pub tensor_nnz: usize,
    /// Non-zeros left to the CUDA tail.
    pub cuda_nnz: usize,
    /// Condensed columns in the CUDA tail.
    pub cuda_cols: usize,
}

impl TileSplit {
    /// True when both core types contribute to the window's output rows —
    /// the case that pays the result-merging overhead.
    pub fn is_mixed(&self) -> bool {
        self.tensor_tiles > 0 && self.cuda_nnz > 0
    }
}

impl StraightforwardHybrid {
    /// Classify one window's tiles by density (the Fig. 4a rearrangement):
    /// per-column non-zero counts over the condensed window, sorted
    /// densest-first, walked in `tile_k`-wide tiles.
    pub fn tile_split(&self, w: &RowWindow, tile_k: usize) -> TileSplit {
        // Per-column fills straight off the occupancy bitmaps — no decode.
        let mut col_counts = w.meta.col_counts();
        col_counts.sort_unstable_by(|a, b| b.cmp(a));

        let mut split = TileSplit::default();
        for tile in col_counts.chunks(tile_k) {
            let fill: u32 = tile.iter().sum();
            let density = fill as f64 / (w.rows * tile_k) as f64;
            if density >= self.tile_density_threshold {
                split.tensor_tiles += 1;
                split.tensor_nnz += fill as usize;
            } else {
                split.cuda_nnz += fill as usize;
                split.cuda_cols += tile.len();
            }
        }
        split
    }

    /// Cost of one window under the per-tile strategy: both fragments run
    /// through the regular per-path models, plus — when both core types
    /// contribute — the result-merging overhead the row-window unit avoids.
    pub fn window_cost(&self, w: &RowWindow, dim: usize, dev: &DeviceSpec) -> BlockCost {
        let cuda = CudaSpmm::optimized();
        let tensor = TensorSpmm::optimized();
        let tile_k = Precision::Tf32.tile_k();
        let split = self.tile_split(w, tile_k);

        // Cost both fragments through the regular per-path models…
        let mut b = BlockCost {
            warps: 8,
            ..Default::default()
        };
        if split.tensor_tiles > 0 {
            let tb = tensor.window_block_cost(
                split.tensor_nnz,
                split.tensor_tiles * tile_k,
                w.rows,
                dim,
                dev,
            );
            merge_block(&mut b, &tb);
        }
        if split.cuda_nnz > 0 {
            let cb = cuda.window_block_cost(split.cuda_nnz, split.cuda_cols, w.rows, dim, dev);
            merge_block(&mut b, &cb);
        }
        // …then add what the row-window strategy avoids: when BOTH core
        // types contribute to the same output rows, the Tensor-side
        // fragments must spill to shared memory, be added to the CUDA
        // partials, and the combined rows stored — an extra Z-sized
        // shared round trip plus an add pass (footnote 4's ≤31 %).
        if split.is_mixed() {
            let z_words = (w.rows * dim) as u64;
            // Every Tensor warp's accumulator fragments spill to shared
            // memory once per 16-wide dim chunk (they cannot stay in
            // registers across the merge barrier), the CUDA partials
            // are read back, added, and the sum re-staged for the
            // store — two full passes over the window's output.
            b.shared.stores += z_words.div_ceil(8) * 2;
            b.shared.loads += z_words.div_ceil(8) * 2;
            b.cuda_fma_issues += z_words.div_ceil(32); // the add pass
                                                       // Double Z store removed: only one final store, but the
                                                       // split edge segments cost an extra index stream.
            b.dram.transactions += coalesced_transactions(w.nnz as u64 * 4, dev.transaction_bytes);
            b.dram.bytes_loaded += w.nnz as u64 * 4;
            // The per-path models each charged a Z store; merging means it
            // is stored once.
            let z_bytes = (w.rows * dim) as u64 * 4;
            b.dram.bytes_stored = b.dram.bytes_stored.saturating_sub(z_bytes);
            b.dram.transactions = b.dram.transactions.saturating_sub(
                w.rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes),
            );
        }
        b
    }

    /// Sanitizer-grade trace of one window under the per-tile strategy:
    /// the Tensor sub-program, the CUDA tail and — for mixed windows — the
    /// merge pass run as barrier-separated sequential phases of one block,
    /// mirroring [`window_cost`](StraightforwardHybrid::window_cost). In a
    /// mixed window only the CUDA phase stores Z (the cost model likewise
    /// removes the double store).
    pub fn window_trace(&self, w: &RowWindow, dim: usize, dev: &DeviceSpec) -> BlockTrace {
        let mut t = BlockTrace::default();
        self.window_trace_into(w, dim, dev, &mut t);
        t
    }

    /// Counter-mode view of
    /// [`window_trace`](StraightforwardHybrid::window_trace): the same
    /// phase sequence, accumulating counters instead of event vectors.
    pub fn window_counters(&self, w: &RowWindow, dim: usize, dev: &DeviceSpec) -> CounterTrace {
        let mut c = CounterTrace::default();
        self.window_trace_into(w, dim, dev, &mut c);
        c
    }

    /// The single emitter behind both representations: each sub-phase
    /// records into the shared sink, separated by block-wide barriers, with
    /// its shared region allocated past the previous phase's (what
    /// `BlockTrace::append_sequential` used to do by rebasing — here the
    /// sink's allocation cursor does it for event and counter mode alike).
    pub fn window_trace_into<S: TraceSink>(
        &self,
        w: &RowWindow,
        dim: usize,
        dev: &DeviceSpec,
        sink: &mut S,
    ) {
        let cuda = CudaSpmm::optimized();
        let tensor = TensorSpmm::optimized();
        let tile_k = Precision::Tf32.tile_k();
        let split = self.tile_split(w, tile_k);
        let mixed = split.is_mixed();

        // The merged block always runs at least the 8 warps the cost model
        // starts from; sub-phases with fewer warps leave the rest idle.
        sink.ensure_warps(8);
        if split.tensor_tiles > 0 {
            sink.record_all(WarpOp::Barrier);
            tensor.window_trace_into_impl(
                split.tensor_nnz,
                split.tensor_tiles * tile_k,
                w.rows,
                dim,
                dev,
                !mixed,
                sink,
            );
        }
        if split.cuda_nnz > 0 {
            sink.record_all(WarpOp::Barrier);
            cuda.window_trace_into(split.cuda_nnz, split.cuda_cols, w.rows, dim, dev, sink);
        }
        if mixed {
            sink.record_all(WarpOp::Barrier);
            self.merge_phase_into(w, dim, dev, sink);
        }
    }

    /// The result-merging pass of a mixed window: Tensor accumulators and
    /// CUDA partials spill into a Z-sized shared region, a barrier, then
    /// the read-back + add pass and the split-edge index stream.
    fn merge_phase_into<S: TraceSink>(
        &self,
        w: &RowWindow,
        dim: usize,
        dev: &DeviceSpec,
        sink: &mut S,
    ) {
        let nwarps = 8usize;
        let z_words = (w.rows * dim) as u64;
        let spill_ops = z_words.div_ceil(8) * 2;
        sink.ensure_warps(nwarps);
        // Each spill store covers a 4-word slice of the region.
        let base = sink.alloc_shared((spill_ops * 4) as u32);
        let mut turn = 0usize;
        let mut push = |sink: &mut S, op: WarpOp| {
            sink.record(turn % nwarps, op);
            turn += 1;
        };
        for i in 0..spill_ops {
            push(sink, WarpOp::shared_write(base + i as u32 * 4, 4));
        }
        sink.record_all(WarpOp::Barrier);
        for i in 0..spill_ops {
            push(sink, WarpOp::shared_read(base + i as u32 * 4, 4));
        }
        for _ in 0..z_words.div_ceil(32) {
            push(sink, WarpOp::Compute);
        }
        for _ in 0..coalesced_transactions(w.nnz as u64 * 4, dev.transaction_bytes) {
            push(
                sink,
                WarpOp::Global {
                    bytes: dev.transaction_bytes,
                },
            );
        }
    }
}

impl StraightforwardHybrid {
    /// Per-window block costs (tile_split + both path models) of the
    /// partition — per-window independent, evaluated on the pool with
    /// window order preserved. The timing half of
    /// [`spmm_with_partition`](StraightforwardHybrid::spmm_with_partition).
    pub fn partition_block_costs(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        dim: usize,
        dev: &DeviceSpec,
    ) -> Vec<BlockCost> {
        let cost_work = 2 * a.nnz() as u64 + part.len() as u64 * 64;
        hc_parallel::par_map(&part.windows, cost_work, |w| {
            (!w.is_empty()).then(|| self.window_cost(w, dim, dev))
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// SpMM against a prebuilt row-window partition of `a` — the reusable
    /// half of [`spmm`](SpmmKernel::spmm), split out so a cached serving
    /// plan can amortize the partition build across requests. `part` must
    /// have been built from a matrix with `a`'s structure.
    pub fn spmm_with_partition(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let blocks = self.partition_block_costs(part, a, x.cols, dev);
        let run = dev.execute(&blocks);
        SpmmResult {
            z: self.partition_numeric(part, a, x),
            run,
        }
    }

    /// Numerical result over a prebuilt partition: tiles with density ≥
    /// threshold are quantized (TF32), the rest exact — per entry, by its
    /// column's rank in the window. All ranking state is window-local, and
    /// windows tile the rows contiguously, so each pool worker owns its
    /// window's chunk of z.data exclusively (chunk index == window index).
    /// Split out so a cached plan can pair it with cached block costs.
    pub fn partition_numeric(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        x: &DenseMatrix,
    ) -> DenseMatrix {
        let tile_k = Precision::Tf32.tile_k();
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        if a.nrows > 0 && x.cols > 0 {
            let cols = x.cols;
            let work = 2 * a.nnz() as u64 * cols as u64;
            let chunk = part.window_rows * cols;
            hc_parallel::par_chunks_mut(&mut z.data, chunk, work, |wi, zc| {
                let w = &part.windows[wi];
                if w.is_empty() {
                    return;
                }
                let col_counts = w.meta.col_counts();
                // Rank columns by density to find each column's tile.
                let mut order: Vec<usize> = (0..col_counts.len()).collect();
                order.sort_unstable_by(|&i, &j| col_counts[j].cmp(&col_counts[i]));
                let mut rank_of = vec![0usize; col_counts.len()];
                for (rank, &col) in order.iter().enumerate() {
                    rank_of[col] = rank;
                }
                let tile_of = |cond: usize| rank_of[cond] / tile_k;
                // Tile densities in rank order.
                let mut tile_fill = vec![0u32; col_counts.len().div_ceil(tile_k)];
                for (rank, &col) in order.iter().enumerate() {
                    tile_fill[rank / tile_k] += col_counts[col];
                }
                for r in w.start_row..w.start_row + w.rows {
                    let (s, e) = a.row_range(r);
                    let local = r - w.start_row;
                    let zrow = &mut zc[local * cols..(local + 1) * cols];
                    // Bitmap walk == this row's CSR entry order.
                    let conds = w.meta.row_cond_indices(local);
                    for (i, cond) in (s..e).zip(conds) {
                        let cond = cond as usize;
                        let t = tile_of(cond);
                        let dense = tile_fill[t] as f64 / (w.rows * tile_k) as f64
                            >= self.tile_density_threshold;
                        let (av, quant) = if dense {
                            (Precision::Tf32.quantize(a.vals[i]), true)
                        } else {
                            (a.vals[i], false)
                        };
                        let xrow = x.row(a.col_idx[i] as usize);
                        for (o, &xv) in zrow.iter_mut().zip(xrow) {
                            let xq = if quant {
                                Precision::Tf32.quantize(xv)
                            } else {
                                xv
                            };
                            *o += av * xq;
                        }
                    }
                }
            });
        }
        z
    }
}

impl SpmmKernel for StraightforwardHybrid {
    fn name(&self) -> &'static str {
        "Per-tile hybrid"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        self.spmm_with_partition(&RowWindowPartition::build(a), a, x, dev)
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let part = RowWindowPartition::build(a);
        dev.execute(&self.partition_block_costs(&part, a, x.cols, dev))
    }
}

fn merge_block(dst: &mut BlockCost, src: &BlockCost) {
    dst.cuda_fma_issues += src.cuda_fma_issues;
    dst.wmma_issues += src.wmma_issues;
    dst.dram.add(&src.dram);
    dst.prefetch.add(&src.prefetch);
    dst.shared.add(&src.shared);
    dst.warps = dst.warps.max(src.warps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HcSpmm;
    use graph_sparse::gen;

    #[test]
    fn numerics_match_reference_within_tf32() {
        let a = gen::community(512, 4_000, 16, 0.9, 1);
        let x = DenseMatrix::random_features(512, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = StraightforwardHybrid::default().spmm(&a, &x, &dev);
        assert!(a.spmm_reference(&x).max_abs_diff(&r.z) < 0.05);
    }

    #[test]
    fn row_window_strategy_beats_per_tile_on_mixed_graphs() {
        // The §IV-A argument: merging overhead + split storage make the
        // fine-grained hybrid lose to the row-window unit.
        let dev = DeviceSpec::rtx3090();
        let a = gen::molecules(4_096, 10_000, 3);
        let x = DenseMatrix::random_features(4_096, 64, 4);
        let per_tile = StraightforwardHybrid::default()
            .spmm(&a, &x, &dev)
            .run
            .time_ms;
        let row_window = HcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        assert!(
            row_window < per_tile,
            "row-window {row_window} should beat per-tile {per_tile}"
        );
    }

    #[test]
    fn pure_windows_pay_no_merge_overhead() {
        // A window where every tile is dense (or every tile sparse) incurs
        // no merge pass: the block cost equals the single-path cost plus
        // nothing extra in shared memory.
        let dev = DeviceSpec::rtx3090();
        // All-dense tiny matrix → all tiles Tensor.
        let mut coo = graph_sparse::Coo::new(16, 8);
        for r in 0..16 {
            for c in 0..8 {
                coo.push(r, c, 1.0);
            }
        }
        let a = coo.to_csr();
        let x = DenseMatrix::random_features(8, 32, 5);
        let r = StraightforwardHybrid::default().spmm(&a, &x, &dev);
        let pure = TensorSpmm::optimized().spmm(&a, &x, &dev);
        assert!((r.run.time_ms - pure.run.time_ms).abs() / pure.run.time_ms < 0.05);
    }
}
