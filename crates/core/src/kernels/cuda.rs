//! SpMM on CUDA cores — Algorithm 1 with the Algorithm 3 optimizations.
//!
//! One thread block processes one row window; one warp computes one row of
//! `Z` per 32-wide slice of the dense dimension, skipping zeros through the
//! CSR format. Two optimizations from §IV-D1:
//!
//! * **Generalization** — when `dim % 32 != 0`, the tail slice packs
//!   multiple rows per warp instead of idling lanes, so compute and X
//!   traffic are charged for the true dimension rather than the padded one.
//! * **Memory management** — column indices and values are staged in shared
//!   memory by all threads cooperatively, replacing the per-iteration
//!   global-memory broadcast reads.

use gpu_sim::trace::{BlockTrace, CounterTrace, TraceSink, WarpOp};
use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, Precision};
use graph_sparse::{Csr, DenseMatrix, RowWindowPartition};

use super::{SpmmKernel, SpmmResult};

/// CUDA-core SpMM kernel.
#[derive(Debug, Clone, Copy)]
pub struct CudaSpmm {
    /// Stage CSR entries in shared memory (Algorithm 3 lines 1–5).
    pub shared_mem_edges: bool,
    /// Adaptive threads-per-row for unaligned dimensions (lines 6–19).
    pub generalized: bool,
    /// Operand precision: FP32 in the main experiments; half/bfloat16
    /// (Appendix B) halve value and dense-operand traffic.
    pub precision: Precision,
}

impl Default for CudaSpmm {
    fn default() -> Self {
        CudaSpmm {
            shared_mem_edges: true,
            generalized: true,
            precision: Precision::Fp32,
        }
    }
}

impl CudaSpmm {
    /// Fully optimized configuration (the deployed kernel).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// Algorithm 1 without the §IV-D1 optimizations (ablation baseline).
    pub fn unoptimized() -> Self {
        CudaSpmm {
            shared_mem_edges: false,
            generalized: false,
            ..Self::default()
        }
    }

    /// With reduced-precision operands (Appendix B).
    pub fn with_precision(precision: Precision) -> Self {
        CudaSpmm {
            precision,
            ..Self::default()
        }
    }

    /// Cost of processing one row window as a thread block.
    ///
    /// `nnz` is the window's non-zero count, `distinct_cols` the number of
    /// distinct columns it touches (the cache-resident X rows), `rows` its
    /// height and `dim` the dense dimension.
    pub fn window_block_cost(
        &self,
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockCost {
        let mut b = BlockCost {
            warps: rows.clamp(1, 16) as u32,
            ..Default::default()
        };
        let full_slices = dim / 32;
        let rem = dim % 32;
        // Slices the kernel iterates (padded when not generalized).
        let mem_slices = full_slices + usize::from(rem > 0);

        // -- Compute: one warp-wide FMA issue per nnz per slice. The
        // generalized kernel packs the tail so only rem/32 of an issue is
        // paid; the plain kernel pays a full issue with idle lanes.
        let tail_issue = if rem == 0 {
            0.0
        } else if self.generalized {
            rem as f64 / 32.0
        } else {
            1.0
        };
        b.cuda_fma_issues = (nnz as f64 * (full_slices as f64 + tail_issue)).ceil() as u64;

        // -- CSR entry access (colIdx u32 + one value per entry).
        let entry_bytes = 4 + self.precision.storage_bytes();
        if self.shared_mem_edges {
            // One cooperative coalesced load, then shared-memory broadcasts.
            b.dram.transactions +=
                coalesced_transactions(nnz as u64 * entry_bytes, dev.transaction_bytes);
            b.dram.bytes_loaded += nnz as u64 * entry_bytes;
            b.shared.stores += (nnz as u64).div_ceil(dev.warp_size as u64) * 2;
            b.shared.loads += (nnz * mem_slices) as u64;
        } else {
            // Per-iteration global broadcast reads: every k step of every
            // slice re-reads colIdx[k] and val[k]. Sequential addresses hit
            // the L1 after the leading sector, so DRAM traffic stays modest,
            // but the loads sit on the dependent-latency chain.
            b.dram.transactions += (nnz * mem_slices) as u64 * 2;
            b.dram.bytes_loaded += nnz as u64 * entry_bytes * 2;
        }

        // -- Dense-matrix gathers: each nnz triggers one transaction per
        // slice (rows of X are scattered), but DRAM traffic is deduplicated
        // to the window's distinct columns — the L1/L2 capture intra-window
        // reuse. The un-generalized kernel gathers the padded width.
        let x_width = if self.generalized || rem == 0 {
            dim
        } else {
            (full_slices + 1) * 32
        };
        let eb = self.precision.storage_bytes();
        b.dram.transactions += (nnz * mem_slices) as u64;
        b.dram.bytes_loaded += (distinct_cols * x_width) as u64 * eb;

        // -- Result stores, coalesced.
        b.dram.bytes_stored += (rows * dim) as u64 * eb;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);

        b
    }

    /// Sanitizer-grade per-warp trace of the same row window: the op counts
    /// mirror [`window_block_cost`](CudaSpmm::window_block_cost) term by
    /// term (the cost-conformance lint holds this emitter to that), with
    /// the shared-memory staging of Algorithm 3 lines 1–5 made explicit —
    /// cooperative disjoint stores, a block barrier, then broadcast entry
    /// reads during the multiply phase.
    pub fn window_trace(
        &self,
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockTrace {
        let mut t = BlockTrace::default();
        self.window_trace_into(nnz, distinct_cols, rows, dim, dev, &mut t);
        t
    }

    /// Counter-mode view of [`window_trace`](CudaSpmm::window_trace): the
    /// same emitter, accumulating counters instead of event vectors.
    pub fn window_counters(
        &self,
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> CounterTrace {
        let mut c = CounterTrace::default();
        self.window_trace_into(nnz, distinct_cols, rows, dim, dev, &mut c);
        c
    }

    /// The single trace emitter behind both representations, generic over
    /// the [`TraceSink`]. Composable: records into whatever warps/shared
    /// regions the sink already holds (the per-tile hybrid appends this as
    /// a phase of its merged block).
    pub fn window_trace_into<S: TraceSink>(
        &self,
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
        sink: &mut S,
    ) {
        let _ = distinct_cols; // only affects byte traffic, not op counts
        let nwarps = rows.clamp(1, 16);
        let full_slices = dim / 32;
        let rem = dim % 32;
        let mem_slices = full_slices + usize::from(rem > 0);
        let tail_issue = if rem == 0 {
            0.0
        } else if self.generalized {
            rem as f64 / 32.0
        } else {
            1.0
        };
        let fma = (nnz as f64 * (full_slices as f64 + tail_issue)).ceil() as u64;
        let entry_bytes = 4 + self.precision.storage_bytes();

        sink.ensure_warps(nwarps);
        let mut turn = 0usize;
        let mut push = |sink: &mut S, op: WarpOp| {
            sink.record(turn % nwarps, op);
            turn += 1;
        };

        if self.shared_mem_edges {
            // Cooperative coalesced edge-list load + staging: two words
            // (colIdx, value) per entry, one 32-word store per warp step.
            let stage_loads =
                coalesced_transactions(nnz as u64 * entry_bytes, dev.transaction_bytes);
            let stage_stores = (nnz as u64).div_ceil(dev.warp_size as u64) * 2;
            let base = sink.alloc_shared(stage_stores as u32 * 32);
            for _ in 0..stage_loads {
                push(
                    sink,
                    WarpOp::Global {
                        bytes: dev.transaction_bytes,
                    },
                );
            }
            for i in 0..stage_stores {
                push(sink, WarpOp::shared_write(base + i as u32 * 32, 32));
            }
            sink.record_all(WarpOp::Barrier);
            // Multiply phase: per (slice, entry) a broadcast read of the
            // staged colIdx+value pair, then the X gather.
            for j in 0..nnz * mem_slices {
                let entry = (j % nnz.max(1)) as u32;
                push(sink, WarpOp::shared_read(base + entry * 2, 2));
                push(
                    sink,
                    WarpOp::Global {
                        bytes: dev.transaction_bytes.min(dim as u32 * 4),
                    },
                );
            }
        } else {
            // Per-iteration global broadcast reads of colIdx[k] and val[k],
            // plus the X gather — no shared memory, no barrier needed.
            for _ in 0..nnz * mem_slices {
                for _ in 0..3 {
                    push(
                        sink,
                        WarpOp::Global {
                            bytes: dev.transaction_bytes.min(dim as u32 * 4),
                        },
                    );
                }
            }
        }
        for _ in 0..fma {
            push(sink, WarpOp::Compute);
        }
        // Result stores, one coalesced run per row.
        let z_tx = coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        for r in 0..rows {
            for _ in 0..z_tx {
                sink.record(
                    r % nwarps,
                    WarpOp::Global {
                        bytes: dev.transaction_bytes,
                    },
                );
            }
        }
    }
}

impl CudaSpmm {
    /// SpMM against a prebuilt row-window partition of `a` — the reusable
    /// half of [`spmm`](SpmmKernel::spmm), split out so a cached serving
    /// plan can amortize the partition build across requests. `part` must
    /// have been built from a matrix with `a`'s structure.
    /// Per-window block costs of the partition — the timing half of
    /// [`spmm_with_partition`](CudaSpmm::spmm_with_partition).
    pub fn partition_block_costs(
        &self,
        part: &RowWindowPartition,
        dim: usize,
        dev: &DeviceSpec,
    ) -> Vec<BlockCost> {
        part.windows
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| self.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev))
            .collect()
    }

    /// SpMM against a prebuilt row-window partition of `a` — the reusable
    /// half of [`spmm`](SpmmKernel::spmm), split out so a cached serving
    /// plan can amortize the partition build across requests. `part` must
    /// have been built from a matrix with `a`'s structure.
    pub fn spmm_with_partition(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let blocks = self.partition_block_costs(part, x.cols, dev);
        let run = dev.execute(&blocks);
        SpmmResult {
            z: self.numeric(a, x),
            run,
        }
    }

    /// Numerical result: exact at FP32; operand-quantized otherwise.
    /// Either way output rows are computed on the hc-parallel pool, one
    /// worker per row, in the serial entry order — bit-identical at any
    /// thread count. Split out so a cached plan can pair it with cached
    /// block costs.
    pub fn numeric(&self, a: &Csr, x: &DenseMatrix) -> DenseMatrix {
        if self.precision == Precision::Fp32 {
            return a.spmm_reference(x);
        }
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        if a.nrows > 0 && x.cols > 0 {
            let p = self.precision;
            let work = 2 * a.nnz() as u64 * x.cols as u64;
            hc_parallel::par_chunks_mut(&mut z.data, x.cols, work, |r, zrow| {
                let (s, e) = a.row_range(r);
                for i in s..e {
                    let v = p.quantize(a.vals[i]);
                    let xrow = x.row(a.col_idx[i] as usize);
                    for (o, &xv) in zrow.iter_mut().zip(xrow) {
                        *o += v * p.quantize(xv);
                    }
                }
            });
        }
        z
    }
}

impl SpmmKernel for CudaSpmm {
    fn name(&self) -> &'static str {
        "HC-CUDA"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        self.spmm_with_partition(&RowWindowPartition::build(a), a, x, dev)
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let part = RowWindowPartition::build(a);
        dev.execute(&self.partition_block_costs(&part, x.cols, dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_matches_reference;
    use graph_sparse::gen;

    #[test]
    fn result_is_exact() {
        let a = gen::erdos_renyi(100, 300, 1);
        let x = DenseMatrix::random_features(100, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = CudaSpmm::optimized().spmm(&a, &x, &dev);
        assert_matches_reference(&a, &x, &r.z, 0.0);
        assert!(r.run.time_ms > 0.0);
    }

    #[test]
    fn time_decreases_with_sparsity() {
        // Same shape, fewer non-zeros → faster (the Fig. 1(a) falling curve).
        let dev = DeviceSpec::rtx3090();
        let dense = gen::training_window(16, 32, 480, 3);
        let sparse = gen::training_window(16, 32, 40, 3);
        let x = DenseMatrix::random_features(32, 32, 4);
        let k = CudaSpmm::optimized();
        let td = k.spmm(&dense, &x, &dev).run.time_ms;
        let ts = k.spmm(&sparse, &x, &dev).run.time_ms;
        assert!(ts < td, "sparse {ts} !< dense {td}");
    }

    #[test]
    fn generalization_helps_unaligned_dims() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(512, 4096, 5);
        let x = DenseMatrix::random_features(512, 47, 6); // dim 47: the paper's example
        let opt = CudaSpmm::optimized();
        let plain = CudaSpmm {
            generalized: false,
            ..CudaSpmm::default()
        };
        let t_opt = opt.spmm(&a, &x, &dev).run.time_ms;
        let t_plain = plain.spmm(&a, &x, &dev).run.time_ms;
        assert!(t_opt < t_plain);
        // Aligned dims: no difference in issue counts.
        let x32 = DenseMatrix::random_features(512, 64, 6);
        let b_opt = opt.window_block_cost(100, 50, 16, 64, &dev);
        let b_plain = plain.window_block_cost(100, 50, 16, 64, &dev);
        assert_eq!(b_opt.cuda_fma_issues, b_plain.cuda_fma_issues);
        let _ = x32;
    }

    #[test]
    fn shared_memory_staging_helps() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(1024, 8000, 32, 0.8, 7);
        let x = DenseMatrix::random_features(1024, 32, 8);
        let with = CudaSpmm::optimized();
        let without = CudaSpmm {
            shared_mem_edges: false,
            ..CudaSpmm::default()
        };
        let tw = with.spmm(&a, &x, &dev).run.time_ms;
        let to = without.spmm(&a, &x, &dev).run.time_ms;
        assert!(tw < to, "shared-mem staging should win: {tw} !< {to}");
    }

    #[test]
    fn empty_matrix_is_cheap_and_correct() {
        let a = Csr::empty(64, 64);
        let x = DenseMatrix::random_features(64, 16, 1);
        let dev = DeviceSpec::rtx3090();
        let r = CudaSpmm::optimized().spmm(&a, &x, &dev);
        assert_eq!(r.z, DenseMatrix::zeros(64, 16));
        assert_eq!(r.run.profile.blocks, 0);
    }
}
