//! SpMM on Tensor cores — Algorithm 2 with the Algorithm 4 data-loading
//! optimization.
//!
//! One thread block processes one condensed row window. The window's
//! non-zero columns are traversed in 16×`tile_k` tiles; for each tile the A
//! fragment is converted from CSR into shared memory and the matching
//! `tile_k`×16 fragments of X are staged, then each warp issues WMMA
//! multiply-accumulates. Tensor cores cannot skip zeros inside a tile, so
//! the cost is tied to the *tile count* (≈ nnz_cols / tile_k), not to nnz —
//! flat in sparsity, linear in non-zero columns (Fig. 1).
//!
//! The §IV-D2 optimization has all warps of a block cooperatively load X
//! fragments with the Fig. 6 transposed layout, eliminating shared-memory
//! bank conflicts and hiding gather latency across warps; the plain kernel
//! loads per-warp with a conflicting layout.

use gpu_sim::trace::{BlockTrace, CounterTrace, TraceSink, WarpOp};
use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, Precision};
use graph_sparse::{Csr, DenseMatrix, RowWindow, RowWindowPartition, TileMeta};

use super::{SpmmKernel, SpmmResult};

/// Tensor-core SpMM kernel.
#[derive(Debug, Clone, Copy)]
pub struct TensorSpmm {
    /// Input precision (TF32 in the paper's main experiments).
    pub precision: Precision,
    /// Cooperative, conflict-free X loading (Algorithm 4 / Fig. 6).
    pub optimized_loading: bool,
    /// Read A-fragment metadata in the compressed tile form (occupancy
    /// bitmaps + delta-coded column list) instead of per-entry condensed
    /// indices. Shrinks the metadata stream from ~6 bytes/entry to
    /// [`TileMeta::nominal_bytes`].
    pub compressed_meta: bool,
    /// Double-buffered `cp.async` staging: fragment `f+1`'s X strip is
    /// prefetched while fragment `f` runs its WMMA, removing the
    /// staging-load stall and one barrier per fragment. Only takes effect
    /// together with `optimized_loading` (the per-warp legacy layout has no
    /// async copy path).
    pub pipelined: bool,
}

impl Default for TensorSpmm {
    fn default() -> Self {
        TensorSpmm {
            precision: Precision::Tf32,
            optimized_loading: true,
            compressed_meta: true,
            pipelined: true,
        }
    }
}

impl TensorSpmm {
    /// The deployed configuration.
    pub fn optimized() -> Self {
        Self::default()
    }

    /// Algorithm 2 without the data-loading strategy (ablation baseline).
    pub fn unoptimized() -> Self {
        TensorSpmm {
            optimized_loading: false,
            pipelined: false,
            ..Self::default()
        }
    }

    /// The pre-compression cost model: per-entry condensed-index metadata,
    /// synchronous staging. Reproduces this kernel's historical costs
    /// bit-for-bit — the baseline of the `ext_tile_compress` experiment.
    pub fn uncompressed_unpipelined() -> Self {
        TensorSpmm {
            compressed_meta: false,
            pipelined: false,
            ..Self::default()
        }
    }

    /// Bytes of A-side data one window's conversion phase streams in:
    /// values plus either the compressed tile metadata or the legacy
    /// per-entry condensed indices (colIdx u32 + row-in-window u16).
    fn a_stream_bytes(&self, nnz: usize, nnz_cols: usize, rows: usize) -> u64 {
        let eb = self.precision.storage_bytes();
        if self.compressed_meta {
            nnz as u64 * eb + TileMeta::nominal_bytes(nnz_cols, rows) as u64
        } else {
            nnz as u64 * (6 + eb)
        }
    }

    /// With a specific precision (Appendix B).
    pub fn with_precision(precision: Precision) -> Self {
        TensorSpmm {
            precision,
            ..Self::default()
        }
    }

    /// Cost of one condensed row window processed as a thread block.
    pub fn window_block_cost(
        &self,
        nnz: usize,
        nnz_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockCost {
        let tile_k = self.precision.tile_k();
        let tiles = nnz_cols.div_ceil(tile_k);
        // Each warp owns one 16-wide slice of the dense dimension for the
        // MMA phase (Fig. 5b), but the block always runs 8 warps so that the
        // cooperative loading of Algorithm 4 can spread gathers across all
        // of them.
        let dim_chunks = dim.div_ceil(16);
        let mut b = BlockCost {
            warps: 8,
            ..Default::default()
        };
        if tiles == 0 {
            return b;
        }

        // -- A-fragment conversion: the A stream (values + metadata, see
        // [`a_stream_bytes`](TensorSpmm::a_stream_bytes)) is read once,
        // coalesced, and scattered into the shared tile; scattered
        // single-lane stores serialize modestly.
        let a_bytes = self.a_stream_bytes(nnz, nnz_cols, rows);
        b.dram.transactions += coalesced_transactions(a_bytes, dev.transaction_bytes);
        b.dram.bytes_loaded += a_bytes;
        b.shared.stores += (nnz as u64).div_ceil(dev.warp_size as u64);

        // -- X fragments: per (tile, dim chunk) a tile_k×16 block of X is
        // staged. Each of its tile_k rows is a contiguous strip (64 bytes at
        // 4-byte precisions) — one transaction per row.
        let eb = self.precision.storage_bytes();
        let fragments = (tiles * dim_chunks) as u64;
        let frag_rows = tile_k as u64;
        let frag_bytes = tile_k as u64 * 16 * eb;
        // Distinct X rows = the condensed columns; each contributes its full
        // `dim` elements across the chunked fragments.
        let x_bytes = (nnz_cols * dim) as u64 * eb;
        // Staging stores: 32 lanes × 4 bytes per store step.
        let frag_stores_each = frag_bytes.div_ceil(dev.warp_size as u64 * 4);
        if self.pipelined && self.optimized_loading {
            // Double-buffered: only fragment 0 is a demand load staged
            // through shared stores; fragments 1.. stream in as `cp.async`
            // prefetches that overlap the previous fragment's WMMA and land
            // in the alternate buffer without store instructions.
            b.dram.transactions += frag_rows;
            let demand_x = x_bytes / fragments;
            b.dram.bytes_loaded += demand_x;
            b.prefetch.transactions += (fragments - 1) * frag_rows;
            b.prefetch.bytes_loaded += x_bytes - demand_x;
            b.shared.stores += frag_stores_each;
        } else {
            b.dram.transactions += fragments * frag_rows;
            b.dram.bytes_loaded += x_bytes;
            b.shared.stores += fragments * frag_stores_each;
            if !self.optimized_loading {
                // Per-warp loading: each fragment row is fetched by a quarter
                // warp with partial 32-byte sectors (⅓ wasted traffic and 50 %
                // more transactions), and the untransposed layout causes 4-way
                // bank conflicts on every store step (Fig. 6's pathology).
                b.dram.bytes_loaded += (nnz_cols * dim) as u64 * eb / 3;
                b.dram.transactions += fragments * frag_rows / 2;
                b.shared.bank_conflicts += fragments * frag_stores_each * 3;
            }
        }

        // -- WMMA issues: one per (tile, dim chunk), plus the two fragment
        // loads from shared memory each issue performs.
        b.wmma_issues = fragments;
        b.shared.loads += fragments * 2;

        // -- Result: accumulated in register fragments, stored once.
        b.dram.bytes_stored += (rows * dim) as u64 * 4;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        b
    }

    /// Sanitizer-grade per-warp trace of one condensed window, mirroring
    /// [`window_block_cost`](TensorSpmm::window_block_cost) term by term:
    /// A-fragment conversion into a shared tile region, then per (tile,
    /// dim-chunk) fragment a cooperative X staging pass into a reused
    /// buffer, a barrier, the owning warp's two fragment loads and WMMA
    /// issue, and a closing barrier before the buffer is overwritten.
    pub fn window_trace(
        &self,
        nnz: usize,
        nnz_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockTrace {
        let mut t = BlockTrace::default();
        self.window_trace_into(nnz, nnz_cols, rows, dim, dev, &mut t);
        t
    }

    /// Counter-mode view of [`window_trace`](TensorSpmm::window_trace): the
    /// same emitter, accumulating counters instead of event vectors.
    pub fn window_counters(
        &self,
        nnz: usize,
        nnz_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> CounterTrace {
        let mut c = CounterTrace::default();
        self.window_trace_into(nnz, nnz_cols, rows, dim, dev, &mut c);
        c
    }

    /// The single emitter behind both representations, generic over the
    /// [`TraceSink`].
    pub fn window_trace_into<S: TraceSink>(
        &self,
        nnz: usize,
        nnz_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
        sink: &mut S,
    ) {
        self.window_trace_into_impl(nnz, nnz_cols, rows, dim, dev, true, sink);
    }

    /// Emitter with the Z store made optional: the per-tile hybrid merges a
    /// Tensor part and a CUDA part over the same output rows and stores Z
    /// exactly once, so its Tensor sub-phase must omit the store (matching
    /// the transaction subtraction in its cost merge).
    #[allow(clippy::too_many_arguments)] // window shape + device + mode; private plumbing
    pub(crate) fn window_trace_into_impl<S: TraceSink>(
        &self,
        nnz: usize,
        nnz_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
        z_store: bool,
        sink: &mut S,
    ) {
        let tile_k = self.precision.tile_k();
        let tiles = nnz_cols.div_ceil(tile_k);
        let dim_chunks = dim.div_ceil(16);
        let nwarps = 8usize;
        sink.ensure_warps(nwarps);
        if tiles == 0 {
            return;
        }
        let pipelined = self.pipelined && self.optimized_loading;
        let eb = self.precision.storage_bytes();
        let fragments = (tiles * dim_chunks) as u64;
        let frag_rows = tile_k as u64;
        let frag_bytes = tile_k as u64 * 16 * eb;
        let frag_stores_each = frag_bytes.div_ceil(dev.warp_size as u64 * 4);
        // Shared layout: [A tile region | X staging buffer(s)]; the
        // synchronous kernel reuses one X buffer fenced by barriers, the
        // pipelined kernel double-buffers so prefetches for fragment f+1
        // land while fragment f is consumed.
        let a_stores = (nnz as u64).div_ceil(dev.warp_size as u64);
        let a_words = (a_stores as u32).max(1) * 32;
        let x_words = frag_stores_each as u32 * 32;
        let a_base = sink.alloc_shared(a_words);
        let x_base = sink.alloc_shared(if pipelined { 2 * x_words } else { x_words });
        let xb = |f: u64| x_base + (f % 2) as u32 * x_words * pipelined as u32;
        // Replays billed per staging store step by the unoptimized layout
        // (Fig. 6's 4-way pathology).
        let store_conflicts = if self.optimized_loading { 0 } else { 3 };

        let mut turn = 0usize;
        let mut push = |sink: &mut S, op: WarpOp| {
            sink.record(turn % nwarps, op);
            turn += 1;
        };

        // -- A-fragment conversion: coalesced loads of the A stream
        // (values + compressed or legacy metadata), scattered single-lane
        // stores into the tile region.
        let a_loads = coalesced_transactions(
            self.a_stream_bytes(nnz, nnz_cols, rows),
            dev.transaction_bytes,
        );
        for _ in 0..a_loads {
            push(
                sink,
                WarpOp::Global {
                    bytes: dev.transaction_bytes,
                },
            );
        }
        for i in 0..a_stores {
            push(
                sink,
                WarpOp::shared_write(a_base + i as u32 * 32 % a_words, 32),
            );
        }
        sink.record_all(WarpOp::Barrier);

        // -- Per-fragment staging + MMA. The unoptimized kernel also pays
        // extra partial-sector gathers (fragments*frag_rows/2 in total),
        // spread one batch per fragment with the remainder up front.
        let extra_gathers = if self.optimized_loading {
            0
        } else {
            fragments * frag_rows / 2
        };
        let mut extra_left = extra_gathers;
        let frag_read_words = ((frag_bytes / 4) as u32).clamp(1, x_words);
        if pipelined {
            // Fragment 0 is the only synchronous stage: demand strip loads
            // stored into buffer 0 behind a barrier.
            for _ in 0..frag_rows {
                push(sink, WarpOp::Global { bytes: 64 });
            }
            for s in 0..frag_stores_each {
                push(sink, WarpOp::shared_write(xb(0) + s as u32 * 32, 32));
            }
            sink.record_all(WarpOp::Barrier);
        }
        for f in 0..fragments {
            let chunk = (f as usize) % dim_chunks;
            if pipelined {
                // Steady state: prefetch fragment f+1 into the other buffer
                // (async — no store ops, the copy lands directly) while the
                // owning warp consumes fragment f.
                if f + 1 < fragments {
                    for _ in 0..frag_rows {
                        push(sink, WarpOp::Prefetch { bytes: 64 });
                    }
                }
            } else {
                for _ in 0..frag_rows {
                    push(sink, WarpOp::Global { bytes: 64 });
                }
                let batch = extra_left.div_ceil(fragments - f);
                for _ in 0..batch {
                    push(sink, WarpOp::Global { bytes: 32 });
                }
                extra_left -= batch;
                for s in 0..frag_stores_each {
                    push(
                        sink,
                        WarpOp::shared_access(
                            gpu_sim::AccessKind::Write,
                            x_base + s as u32 * 32,
                            32,
                            store_conflicts,
                        ),
                    );
                }
                sink.record_all(WarpOp::Barrier);
            }
            // Owning warp (Fig. 5b): two fragment loads, one WMMA.
            let w = chunk % nwarps;
            let tile_slice = (f / dim_chunks as u64 * 32 % a_words as u64) as u32;
            sink.record(
                w,
                WarpOp::shared_read(a_base + tile_slice.min(a_words - 32), 32),
            );
            sink.record(w, WarpOp::shared_read(xb(f), frag_read_words));
            sink.record(w, WarpOp::Wmma);
            sink.record_all(WarpOp::Barrier); // fence before buffer reuse
        }

        // -- Result store, coalesced, once per output row.
        if z_store {
            let z_tx = coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
            for r in 0..rows {
                for _ in 0..z_tx {
                    sink.record(
                        r % nwarps,
                        WarpOp::Global {
                            bytes: dev.transaction_bytes,
                        },
                    );
                }
            }
        }
    }

    /// Numerically multiply one window at this kernel's precision,
    /// accumulating into `z` (rows `w.start_row..`). Inputs are quantized,
    /// products accumulate in f32 — the WMMA contract.
    pub fn window_numeric(&self, a: &Csr, w: &RowWindow, x: &DenseMatrix, z: &mut DenseMatrix) {
        let cols = z.cols;
        let lo = w.start_row * cols;
        let hi = (w.start_row + w.rows) * cols;
        self.window_numeric_into(a, w, x, &mut z.data[lo..hi]);
    }

    /// [`window_numeric`](TensorSpmm::window_numeric) against a borrowed
    /// window-sized slice of Z (row-major, `x.cols` columns, row
    /// `w.start_row` at offset 0). This is the form the parallel drivers
    /// use: each worker owns exactly its window's chunk of `z.data`.
    pub fn window_numeric_into(
        &self,
        a: &Csr,
        w: &RowWindow,
        x: &DenseMatrix,
        z_window: &mut [f32],
    ) {
        let p = self.precision;
        let cols = x.cols;
        for r in w.start_row..w.start_row + w.rows {
            let (s, e) = a.row_range(r);
            let local = r - w.start_row;
            let zrow = &mut z_window[local * cols..(local + 1) * cols];
            for i in s..e {
                let v = p.quantize(a.vals[i]);
                let xrow = x.row(a.col_idx[i] as usize);
                for (o, &xv) in zrow.iter_mut().zip(xrow) {
                    *o += v * p.quantize(xv);
                }
            }
        }
    }
}

impl TensorSpmm {
    /// SpMM against a prebuilt row-window partition of `a` — the reusable
    /// half of [`spmm`](SpmmKernel::spmm), split out so a cached serving
    /// plan can amortize the partition build across requests. `part` must
    /// have been built from a matrix with `a`'s structure.
    /// Per-window block costs of the partition (empty windows launch no
    /// block; survivors keep window order) — the timing half of
    /// [`spmm_with_partition`](TensorSpmm::spmm_with_partition).
    pub fn partition_block_costs(
        &self,
        part: &RowWindowPartition,
        dim: usize,
        dev: &DeviceSpec,
    ) -> Vec<BlockCost> {
        hc_parallel::par_map(&part.windows, part.len() as u64 * 64, |w| {
            (!w.is_empty()).then(|| self.window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev))
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// SpMM against a prebuilt row-window partition of `a` — the reusable
    /// half of [`spmm`](SpmmKernel::spmm), split out so a cached serving
    /// plan can amortize the partition build across requests. `part` must
    /// have been built from a matrix with `a`'s structure.
    pub fn spmm_with_partition(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let blocks = self.partition_block_costs(part, x.cols, dev);
        let run = dev.execute(&blocks);
        SpmmResult {
            z: self.partition_numeric(part, a, x),
            run,
        }
    }

    /// Numerical result over a prebuilt partition. Windows tile the rows
    /// contiguously, so chunking z.data by window_rows·cols makes chunk
    /// index == window index and each worker owns its window's output
    /// exclusively. Split out so a cached plan can pair it with cached
    /// block costs.
    pub fn partition_numeric(
        &self,
        part: &RowWindowPartition,
        a: &Csr,
        x: &DenseMatrix,
    ) -> DenseMatrix {
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        if a.nrows > 0 && x.cols > 0 {
            let work = 2 * a.nnz() as u64 * x.cols as u64;
            let chunk = part.window_rows * x.cols;
            hc_parallel::par_chunks_mut(&mut z.data, chunk, work, |wi, zc| {
                let w = &part.windows[wi];
                if !w.is_empty() {
                    self.window_numeric_into(a, w, x, zc);
                }
            });
        }
        z
    }
}

impl SpmmKernel for TensorSpmm {
    fn name(&self) -> &'static str {
        "HC-Tensor"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        self.spmm_with_partition(&RowWindowPartition::build(a), a, x, dev)
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let part = RowWindowPartition::build(a);
        dev.execute(&self.partition_block_costs(&part, x.cols, dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assert_matches_reference;
    use graph_sparse::gen;

    #[test]
    fn fp32_mode_is_exact() {
        let a = gen::erdos_renyi(80, 240, 1);
        let x = DenseMatrix::random_features(80, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = TensorSpmm::with_precision(Precision::Fp32).spmm(&a, &x, &dev);
        assert_matches_reference(&a, &x, &r.z, 0.0);
    }

    #[test]
    fn tf32_mode_is_close() {
        let a = gen::community(128, 600, 8, 0.9, 3);
        let x = DenseMatrix::random_features(128, 32, 4);
        let dev = DeviceSpec::rtx3090();
        let r = TensorSpmm::optimized().spmm(&a, &x, &dev);
        // ~1e-3 relative error from 10-bit mantissas on |v|≤1 data with
        // small reductions.
        assert_matches_reference(&a, &x, &r.z, 0.05);
        // And it is not bit-exact (quantization really happened).
        let want = a.spmm_reference(&x);
        assert!(want.max_abs_diff(&r.z) > 0.0);
    }

    #[test]
    fn time_flat_in_sparsity_at_fixed_cols() {
        // Fig. 1(a): tensor time is stable as sparsity varies.
        let dev = DeviceSpec::rtx3090();
        let x = DenseMatrix::random_features(32, 32, 5);
        let k = TensorSpmm::optimized();
        let dense = gen::training_window(16, 32, 480, 6);
        let sparse = gen::training_window(16, 32, 40, 6);
        let td = k.spmm(&dense, &x, &dev).run.time_ms;
        let ts = k.spmm(&sparse, &x, &dev).run.time_ms;
        assert!(
            (td - ts).abs() / td < 0.15,
            "tensor time should be ~flat: dense {td}, sparse {ts}"
        );
    }

    #[test]
    fn time_grows_with_nnz_cols() {
        // Fig. 1(b): more non-zero columns → more tiles → slower.
        let dev = DeviceSpec::rtx3090();
        let k = TensorSpmm::optimized();
        let narrow = gen::training_window(16, 16, 64, 7);
        let wide = gen::training_window(16, 128, 512, 7);
        let xn = DenseMatrix::random_features(16, 32, 8);
        let xw = DenseMatrix::random_features(128, 32, 8);
        // Compare SM cycles: wall time would be dominated by the fixed
        // launch overhead at this tiny scale.
        let tn = k.spmm(&narrow, &xn, &dev).run.makespan_cycles;
        let tw = k.spmm(&wide, &xw, &dev).run.makespan_cycles;
        assert!(tw > 2.0 * tn, "wide {tw} should be ≫ narrow {tn}");
    }

    #[test]
    fn optimized_loading_wins() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 4000, 16, 0.9, 9);
        let x = DenseMatrix::random_features(512, 64, 10);
        let t_opt = TensorSpmm::optimized().spmm(&a, &x, &dev).run.time_ms;
        let t_plain = TensorSpmm::unoptimized().spmm(&a, &x, &dev).run.time_ms;
        assert!(t_opt < t_plain);
        // Optimized path is conflict-free.
        let r = TensorSpmm::optimized().spmm(&a, &x, &dev);
        assert_eq!(r.run.profile.bank_conflicts, 0);
    }

    #[test]
    fn half_and_bfloat_have_coarser_tiles() {
        let dev = DeviceSpec::rtx3090();
        let half = TensorSpmm::with_precision(Precision::Fp16);
        let tf = TensorSpmm::optimized();
        // 9 non-zero columns: 2 tiles at k=8, 1 tile at k=16.
        let bh = half.window_block_cost(20, 9, 16, 32, &dev);
        let bt = tf.window_block_cost(20, 9, 16, 32, &dev);
        assert_eq!(bh.wmma_issues, 2); // 1 tile × 2 dim chunks
        assert_eq!(bt.wmma_issues, 4); // 2 tiles × 2 dim chunks
    }

    #[test]
    fn empty_window_is_free() {
        let dev = DeviceSpec::rtx3090();
        let b = TensorSpmm::optimized().window_block_cost(0, 0, 16, 32, &dev);
        assert_eq!(b.wmma_issues, 0);
        assert_eq!(b.dram.transactions, 0);
    }
}
