//! HC-SpMM — the hybrid kernel (§IV).
//!
//! Row windows are the hybrid unit (§IV-A): each window is dispatched whole
//! to either the CUDA-core path or the Tensor-core path according to the
//! selector's classification, inside a *single* kernel launch. Because a
//! window's result rows are produced entirely by one core type, no result
//! merging between cores is ever needed.

use gpu_sim::trace::{BlockTrace, CounterTrace, TraceSink};
use gpu_sim::{BlockCost, DeviceSpec, Precision};
use graph_sparse::{Csr, DenseMatrix, RowWindow};

use super::cuda::CudaSpmm;
use super::tensor::TensorSpmm;
use super::{SpmmKernel, SpmmResult};
use crate::preprocess::{preprocess, preprocess_oracle, Preprocessed};
use crate::selector::{CoreChoice, SelectionPolicy, Selector};

/// The HC-SpMM hybrid kernel.
///
/// ```
/// use gpu_sim::DeviceSpec;
/// use graph_sparse::{gen, DenseMatrix};
/// use hc_core::{HcSpmm, SpmmKernel};
///
/// let graph = gen::community(256, 1_500, 8, 0.9, 1);
/// let x = DenseMatrix::random_features(256, 32, 2);
/// let dev = DeviceSpec::rtx3090();
///
/// let hc = HcSpmm::default();
/// let pre = hc.preprocess(&graph, &dev);      // condense + classify, once
/// let out = hc.spmm_preprocessed(&pre, &graph, &x, &dev);
/// assert!(out.run.time_ms > 0.0);
/// assert!(graph.spmm_reference(&x).max_abs_diff(&out.z) < 0.05);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HcSpmm {
    /// Core-selection model.
    pub selector: Selector,
    /// CUDA-core path configuration.
    pub cuda: CudaSpmm,
    /// Tensor-core path configuration.
    pub tensor: TensorSpmm,
}

impl Default for HcSpmm {
    fn default() -> Self {
        HcSpmm {
            selector: Selector::DEFAULT,
            cuda: CudaSpmm::optimized(),
            tensor: TensorSpmm::optimized(),
        }
    }
}

impl HcSpmm {
    /// Hybrid kernel with a specific operand precision on both paths
    /// (Appendix B).
    pub fn with_precision(p: Precision) -> Self {
        HcSpmm {
            tensor: TensorSpmm::with_precision(p),
            cuda: CudaSpmm::with_precision(p),
            ..Self::default()
        }
    }

    /// Run the preprocessing kernel (condense + classify). Its cost is
    /// reported separately, per the paper's measurement protocol.
    pub fn preprocess(&self, a: &Csr, dev: &DeviceSpec) -> Preprocessed {
        preprocess(a, &self.selector, dev)
    }

    /// Preprocess under an explicit [`SelectionPolicy`] — the trained model,
    /// a fixed single-core policy, or the per-window cost oracle (`dim` is
    /// needed by the oracle's cost evaluation).
    pub fn preprocess_with_policy(
        &self,
        a: &Csr,
        dim: usize,
        policy: SelectionPolicy,
        dev: &DeviceSpec,
    ) -> Preprocessed {
        match policy {
            SelectionPolicy::Model => self.preprocess(a, dev),
            SelectionPolicy::AllCuda => {
                let mut pre = self.preprocess(a, dev);
                pre.choices.iter_mut().for_each(|c| *c = CoreChoice::Cuda);
                pre
            }
            SelectionPolicy::AllTensor => {
                let mut pre = self.preprocess(a, dev);
                pre.choices.iter_mut().for_each(|c| *c = CoreChoice::Tensor);
                pre
            }
            SelectionPolicy::Oracle => preprocess_oracle(a, dim, dev),
        }
    }

    /// Execute SpMM given preprocessing artifacts. One launch; each window
    /// runs on its assigned core type.
    pub fn spmm_preprocessed(
        &self,
        pre: &Preprocessed,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let blocks = self.block_costs(pre, x.cols, dev);
        let run = dev.execute(&blocks);
        let z = self.numeric(pre, a, x);
        SpmmResult { z, run }
    }

    /// Per-window block costs under the current assignment (used by the
    /// fusion kernel too). Evaluated per window on the pool; empty windows
    /// launch no block and the survivors keep window order.
    pub fn block_costs(&self, pre: &Preprocessed, dim: usize, dev: &DeviceSpec) -> Vec<BlockCost> {
        let n = pre.partition.len();
        hc_parallel::par_map_indexed(n, n as u64 * 64, |wi| {
            let w = &pre.partition.windows[wi];
            if w.is_empty() {
                return None;
            }
            Some(match pre.choices[wi] {
                CoreChoice::Cuda => {
                    self.cuda
                        .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev)
                }
                CoreChoice::Tensor => {
                    self.tensor
                        .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev)
                }
            })
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Cost of one window on its assigned core type.
    pub fn window_cost(
        &self,
        w: &RowWindow,
        choice: CoreChoice,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockCost {
        match choice {
            CoreChoice::Cuda => self
                .cuda
                .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev),
            CoreChoice::Tensor => {
                self.tensor
                    .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev)
            }
        }
    }

    /// Sanitizer-grade trace of one window on its assigned core type. A
    /// window runs entirely on one core type (the §IV-A row-window unit),
    /// so the hybrid kernel's trace is exactly the chosen path's trace —
    /// no cross-core merge phase can ever appear here.
    pub fn window_trace(
        &self,
        w: &RowWindow,
        choice: CoreChoice,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockTrace {
        let mut t = BlockTrace::default();
        self.window_trace_into(w, choice, dim, dev, &mut t);
        t
    }

    /// Counter-mode view of [`window_trace`](HcSpmm::window_trace): the
    /// chosen path's emitter, accumulating counters instead of events.
    pub fn window_counters(
        &self,
        w: &RowWindow,
        choice: CoreChoice,
        dim: usize,
        dev: &DeviceSpec,
    ) -> CounterTrace {
        let mut c = CounterTrace::default();
        self.window_trace_into(w, choice, dim, dev, &mut c);
        c
    }

    /// The chosen path's emitter, generic over the [`TraceSink`].
    pub fn window_trace_into<S: TraceSink>(
        &self,
        w: &RowWindow,
        choice: CoreChoice,
        dim: usize,
        dev: &DeviceSpec,
        sink: &mut S,
    ) {
        match choice {
            CoreChoice::Cuda => {
                self.cuda
                    .window_trace_into(w.nnz, w.nnz_cols(), w.rows, dim, dev, sink)
            }
            CoreChoice::Tensor => {
                self.tensor
                    .window_trace_into(w.nnz, w.nnz_cols(), w.rows, dim, dev, sink)
            }
        }
    }

    /// Numerical result under the current assignment: CUDA windows compute
    /// exact f32; Tensor windows compute at the configured precision.
    /// Windows tile the rows contiguously, so chunking `z.data` by
    /// `window_rows · cols` gives each pool worker exclusive ownership of
    /// its window's output rows — results are bit-identical to the serial
    /// window loop at any thread count.
    pub fn numeric(&self, pre: &Preprocessed, a: &Csr, x: &DenseMatrix) -> DenseMatrix {
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        if a.nrows == 0 || x.cols == 0 {
            return z;
        }
        let cols = x.cols;
        let chunk = pre.partition.window_rows * cols;
        let work = 2 * a.nnz() as u64 * cols as u64;
        hc_parallel::par_chunks_mut(&mut z.data, chunk, work, |wi, zc| {
            let w = &pre.partition.windows[wi];
            if w.is_empty() {
                return;
            }
            match pre.choices[wi] {
                CoreChoice::Cuda => {
                    let p = self.cuda.precision;
                    for r in w.start_row..w.start_row + w.rows {
                        let (s, e) = a.row_range(r);
                        let local = r - w.start_row;
                        let zrow = &mut zc[local * cols..(local + 1) * cols];
                        for i in s..e {
                            let v = p.quantize(a.vals[i]);
                            let xrow = x.row(a.col_idx[i] as usize);
                            for (o, &xv) in zrow.iter_mut().zip(xrow) {
                                *o += v * p.quantize(xv);
                            }
                        }
                    }
                }
                CoreChoice::Tensor => self.tensor.window_numeric_into(a, w, x, zc),
            }
        });
        z
    }

    /// Future-work mode (Appendix H): execute the CUDA-window and
    /// Tensor-window block families concurrently on an SM partition instead
    /// of interleaved in one stream.
    pub fn spmm_concurrent(
        &self,
        pre: &Preprocessed,
        a: &Csr,
        x: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> SpmmResult {
        let mut cuda_blocks = Vec::new();
        let mut tensor_blocks = Vec::new();
        for (w, choice) in pre.partition.windows.iter().zip(&pre.choices) {
            if w.is_empty() {
                continue;
            }
            match choice {
                CoreChoice::Cuda => cuda_blocks.push(self.cuda.window_block_cost(
                    w.nnz,
                    w.nnz_cols(),
                    w.rows,
                    x.cols,
                    dev,
                )),
                CoreChoice::Tensor => tensor_blocks.push(self.tensor.window_block_cost(
                    w.nnz,
                    w.nnz_cols(),
                    w.rows,
                    x.cols,
                    dev,
                )),
            }
        }
        let run = dev.execute_concurrent(&cuda_blocks, &tensor_blocks);
        SpmmResult {
            z: self.numeric(pre, a, x),
            run,
        }
    }

    /// Simulated execution time split by core type `(cuda_ms, tensor_ms)` —
    /// the Table XIV quantity. Each side is timed as if launched alone,
    /// without launch overhead.
    pub fn per_core_time(&self, pre: &Preprocessed, dim: usize, dev: &DeviceSpec) -> (f64, f64) {
        let mut cuda_blocks = Vec::new();
        let mut tensor_blocks = Vec::new();
        for (w, choice) in pre.partition.windows.iter().zip(&pre.choices) {
            if w.is_empty() {
                continue;
            }
            match choice {
                CoreChoice::Cuda => cuda_blocks.push(self.cuda.window_block_cost(
                    w.nnz,
                    w.nnz_cols(),
                    w.rows,
                    dim,
                    dev,
                )),
                CoreChoice::Tensor => tensor_blocks.push(self.tensor.window_block_cost(
                    w.nnz,
                    w.nnz_cols(),
                    w.rows,
                    dim,
                    dev,
                )),
            }
        }
        let launch = dev.launch_overhead_us * 1e-3;
        let t = |blocks: &[BlockCost]| {
            if blocks.is_empty() {
                0.0
            } else {
                dev.execute(blocks).time_ms - launch
            }
        };
        (t(&cuda_blocks), t(&tensor_blocks))
    }
}

impl SpmmKernel for HcSpmm {
    fn name(&self) -> &'static str {
        "HC-SpMM"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        let pre = self.preprocess(a, dev);
        self.spmm_preprocessed(&pre, a, x, dev)
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let pre = self.preprocess(a, dev);
        dev.execute(&self.block_costs(&pre, x.cols, dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn hybrid_result_matches_reference_within_tf32() {
        let a = gen::community(512, 4000, 16, 0.9, 1);
        let x = DenseMatrix::random_features(512, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = HcSpmm::default().spmm(&a, &x, &dev);
        let want = a.spmm_reference(&x);
        assert!(want.max_abs_diff(&r.z) < 0.05);
    }

    #[test]
    fn fp32_hybrid_is_exact() {
        let a = gen::barabasi_albert(300, 4, 3);
        let x = DenseMatrix::random_features(300, 48, 4);
        let dev = DeviceSpec::rtx3090();
        let r = HcSpmm::with_precision(Precision::Fp32).spmm(&a, &x, &dev);
        assert_eq!(a.spmm_reference(&x).max_abs_diff(&r.z), 0.0);
    }

    #[test]
    fn hybrid_no_slower_than_both_pure_paths() {
        // The selector picks per window, so the hybrid kernel should not
        // lose to running everything on a single core type (modulo ties).
        let dev = DeviceSpec::rtx3090();
        // Mixed-density graph: dense communities + sparse periphery.
        let a = gen::community(2048, 16_000, 64, 0.9, 5);
        let x = DenseMatrix::random_features(2048, 32, 6);
        let h = HcSpmm::default();
        let pre = h.preprocess(&a, &dev);
        let t_hybrid = h.spmm_preprocessed(&pre, &a, &x, &dev).run.time_ms;
        let t_cuda = CudaSpmm::optimized().spmm(&a, &x, &dev).run.time_ms;
        let t_tensor = TensorSpmm::optimized().spmm(&a, &x, &dev).run.time_ms;
        assert!(
            t_hybrid <= t_cuda * 1.02 && t_hybrid <= t_tensor * 1.02,
            "hybrid {t_hybrid} vs cuda {t_cuda} vs tensor {t_tensor}"
        );
    }

    #[test]
    fn per_core_times_cover_all_windows() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(1024, 8000, 32, 0.9, 7);
        let h = HcSpmm::default();
        let pre = h.preprocess(&a, &dev);
        let (tc, tt) = h.per_core_time(&pre, 32, &dev);
        let (nc, nt) = pre.window_split();
        if nc > 0 {
            assert!(tc > 0.0);
        }
        if nt > 0 {
            assert!(tt > 0.0);
        }
    }

    #[test]
    fn selection_policies_behave_as_named() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::molecules(512, 1_200, 7);
        let x = DenseMatrix::random_features(512, 32, 8);
        let hc = HcSpmm::default();
        use crate::selector::SelectionPolicy as P;
        let time = |p: P| {
            let pre = hc.preprocess_with_policy(&a, 32, p, &dev);
            hc.spmm_preprocessed(&pre, &a, &x, &dev).run.time_ms
        };
        let (model, cuda, tensor, oracle) = (
            time(P::Model),
            time(P::AllCuda),
            time(P::AllTensor),
            time(P::Oracle),
        );
        assert!(oracle <= model * 1.0001);
        assert!(oracle <= cuda * 1.0001);
        assert!(oracle <= tensor * 1.0001);
        // The fixed policies really are single-core.
        let pre = hc.preprocess_with_policy(&a, 32, P::AllCuda, &dev);
        assert!(pre.choices.iter().all(|c| *c == CoreChoice::Cuda));
    }

    #[test]
    fn single_launch_overhead() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(256, 1000, 9);
        let x = DenseMatrix::random_features(256, 32, 10);
        let r = HcSpmm::default().spmm(&a, &x, &dev);
        assert_eq!(r.run.profile.launches, 1);
    }
}
