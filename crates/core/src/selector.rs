//! Adaptive core selection — the logistic-regression model of §IV-C.
//!
//! A two-feature logistic regression (non-zero columns, sparsity) predicts
//! which core type multiplies a row window faster. The four-step training
//! pipeline is reproduced end to end: (1) synthetic sparse matrices are
//! generated (16 rows; 1–130 columns, each with ≥1 non-zero; sparsity 1/16
//! to 15/16); (2) both kernels are executed on each matrix and the faster
//! one labels the sample; (3) the model is trained by gradient descent to
//! convergence; (4) the coefficients are extracted and hard-coded
//! ([`Selector::DEFAULT`]). Inference is `w1·x1 + w2·x2 + b` — a few
//! nanoseconds per window.

use gpu_sim::DeviceSpec;
use graph_sparse::gen;
use serde::{Deserialize, Serialize};

use crate::features::WindowFeatures;
use crate::kernels::cuda::CudaSpmm;
use crate::kernels::tensor::TensorSpmm;

/// Which core type processes a row window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreChoice {
    /// CUDA cores (label 1 in the paper's training data).
    Cuda,
    /// Tensor cores (label 0).
    Tensor,
}

/// The encoded logistic-regression model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Selector {
    /// Coefficient of the non-zero-column count (`x1`).
    pub w1: f64,
    /// Coefficient of the sparsity (`x2`).
    pub w2: f64,
    /// Intercept.
    pub b: f64,
}

impl Selector {
    /// Coefficients produced by [`train_default`] on the RTX 3090 spec —
    /// the "model encoding" step. Regenerate with
    /// `cargo run -p bench --bin train_selector` after changing the device
    /// model. With the pipelined tensor path the staging latency no longer
    /// scales the crossover with the column count, so the fitted boundary
    /// collapses to (almost) pure sparsity: windows denser than ~87 % zeros
    /// go to CUDA cores, everything else to Tensor cores.
    pub const DEFAULT: Selector = Selector {
        w1: 0.0,
        w2: 119.570014,
        b: -104.518048,
    };

    /// Largest column count in the training grid (footnote 8: 130 columns
    /// "accommodates most cases"); wider windows are evaluated at the edge
    /// of the trained support instead of extrapolating the linear model.
    pub const MAX_TRAINED_COLS: f64 = 130.0;

    /// Raw decision value `w1·x1 + w2·x2 + b`; positive means CUDA.
    #[inline]
    pub fn decision_value(&self, f: &WindowFeatures) -> f64 {
        self.w1 * f.nnz_cols.min(Self::MAX_TRAINED_COLS) + self.w2 * f.sparsity + self.b
    }

    /// Select the core type for a window.
    #[inline]
    pub fn choose(&self, f: &WindowFeatures) -> CoreChoice {
        if self.decision_value(f) > 0.0 {
            CoreChoice::Cuda
        } else {
            CoreChoice::Tensor
        }
    }

    /// Classification accuracy on a labeled sample set.
    pub fn accuracy(&self, samples: &[(WindowFeatures, CoreChoice)]) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let hits = samples.iter().filter(|(f, y)| self.choose(f) == *y).count();
        hits as f64 / samples.len() as f64
    }

    /// Train by batch gradient descent on standardized features until the
    /// loss improvement stalls (or 200 000 epochs), then unfold the
    /// standardization into raw-feature coefficients.
    ///
    /// The gradient step is taken every epoch, but the loss — needed only
    /// for the convergence test — is evaluated every [`LOSS_STRIDE`]th
    /// epoch via the softplus identity
    /// `−[y·ln p + (1−y)·ln(1−p)] = softplus(z) − y·z`, which reuses the
    /// sigmoid's `exp` and needs one `ln_1p` instead of two `ln`s. The
    /// weight trajectory is identical to checking every epoch; at worst
    /// the loop runs `LOSS_STRIDE − 1` extra (converged) epochs.
    pub fn train(samples: &[(WindowFeatures, CoreChoice)]) -> Selector {
        assert!(!samples.is_empty(), "empty training set");
        let n = samples.len() as f64;
        // Standardize.
        let (mut m1, mut m2) = (0.0, 0.0);
        for (f, _) in samples {
            m1 += f.nnz_cols;
            m2 += f.sparsity;
        }
        m1 /= n;
        m2 /= n;
        let (mut s1, mut s2) = (0.0, 0.0);
        for (f, _) in samples {
            s1 += (f.nnz_cols - m1).powi(2);
            s2 += (f.sparsity - m2).powi(2);
        }
        s1 = (s1 / n).sqrt().max(1e-9);
        s2 = (s2 / n).sqrt().max(1e-9);

        let xs: Vec<(f64, f64, f64)> = samples
            .iter()
            .map(|(f, y)| {
                (
                    (f.nnz_cols - m1) / s1,
                    (f.sparsity - m2) / s2,
                    if *y == CoreChoice::Cuda { 1.0 } else { 0.0 },
                )
            })
            .collect();

        let (mut w1, mut w2, mut b) = (0.0f64, 0.0f64, 0.0f64);
        let lr = 2.0;
        let mut prev_loss = f64::INFINITY;
        /// Epochs between convergence checks (gradient steps still happen
        /// every epoch); the stop tolerance scales with the stride.
        const LOSS_STRIDE: usize = 8;
        // The training grid is near-separable, so the boundary keeps
        // sharpening as the weights grow; run long with a tight tolerance.
        for epoch in 0..200_000 {
            let check = epoch % LOSS_STRIDE == LOSS_STRIDE - 1;
            let (mut g1, mut g2, mut gb, mut loss) = (0.0, 0.0, 0.0, 0.0);
            if check {
                for &(x1, x2, y) in &xs {
                    let z = w1 * x1 + w2 * x2 + b;
                    let t = (-z).exp();
                    let d = 1.0 / (1.0 + t) - y;
                    g1 += d * x1;
                    g2 += d * x2;
                    gb += d;
                    // softplus(z) = max(z,0) + ln(1 + e^{−|z|}), exact and
                    // saturation-free; `t` already holds e^{−z}.
                    let softplus = if z >= 0.0 {
                        z + t.ln_1p()
                    } else {
                        (1.0 / t).ln_1p()
                    };
                    loss += softplus - y * z;
                }
            } else {
                for &(x1, x2, y) in &xs {
                    let z = w1 * x1 + w2 * x2 + b;
                    let d = 1.0 / (1.0 + (-z).exp()) - y;
                    g1 += d * x1;
                    g2 += d * x2;
                    gb += d;
                }
            }
            w1 -= lr * g1 / n;
            w2 -= lr * g2 / n;
            b -= lr * gb / n;
            if check {
                loss /= n;
                if (prev_loss - loss).abs() < 1e-12 * LOSS_STRIDE as f64 {
                    break;
                }
                prev_loss = loss;
            }
        }
        // Unfold standardization: w·(x-m)/s + b = (w/s)·x + (b - w·m/s).
        Selector {
            w1: w1 / s1,
            w2: w2 / s2,
            b: b - w1 * m1 / s1 - w2 * m2 / s2,
        }
    }
}

impl Default for Selector {
    fn default() -> Self {
        Selector::DEFAULT
    }
}

/// How the hybrid kernel decides a window's core type — the trained model,
/// a fixed policy, or the per-window oracle (upper bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// The §IV-C logistic-regression model.
    Model,
    /// Every window on CUDA cores.
    AllCuda,
    /// Every window on Tensor cores.
    AllTensor,
    /// Per-window cost oracle: evaluate both block costs and keep the
    /// cheaper one (unrealizable online — the selection upper bound).
    Oracle,
}

/// Pipeline step 1+2: generate the synthetic training matrices of §IV-C and
/// label each by executing both kernels on `dev`.
///
/// `nnz_levels` sparsity levels are sampled per column count (the paper uses
/// a dense sweep; 8 levels × 130 column counts ≈ 1 000 samples).
pub fn generate_training_set(
    dev: &DeviceSpec,
    nnz_levels: usize,
) -> Vec<(WindowFeatures, CoreChoice)> {
    let rows = 16usize;
    let cuda = CudaSpmm::optimized();
    let tensor = TensorSpmm::optimized();
    let dim = 32usize;
    let mut out = Vec::new();
    // Windows narrower than one row-window height execute in fractions of a
    // microsecond, below reliable measurement granularity (the paper's
    // footnote 5 notes execution-time tendencies are invisible at that
    // scale), so the measured grid starts at 16 columns.
    for cols in 16..=130usize {
        let lo = cols; // sparsity 15/16
        let hi = cols * (rows - 1); // sparsity 1/16
        for lvl in 0..nnz_levels {
            let nnz = lo + (hi - lo) * lvl / (nnz_levels - 1).max(1);
            // Execution-result collection: the deployed kernels with the
            // deployed parameters, compared per-window by SM cycles (both
            // run as one block; launch overhead cancels).
            let w = gen::training_window(rows, cols, nnz, (cols * 131 + lvl) as u64);
            let win = &graph_sparse::RowWindowPartition::build(&w).windows[0];
            // The paper averages 100 executions per matrix, so the dense
            // operand is cache-resident after the first run: label with the
            // warm view of each block.
            let bc = cuda
                .window_block_cost(win.nnz, win.nnz_cols(), rows, dim, dev)
                .warm();
            let bt = tensor
                .window_block_cost(win.nnz, win.nnz_cols(), rows, dim, dev)
                .warm();
            let tc = dev.execute(&[bc]).makespan_cycles;
            let tt = dev.execute(&[bt]).makespan_cycles;
            let label = if tc < tt {
                CoreChoice::Cuda
            } else {
                CoreChoice::Tensor
            };
            out.push((WindowFeatures::of(win), label));
        }
    }
    out
}

/// Run the full §IV-C pipeline on `dev`: generate → collect → train.
pub fn train_default(dev: &DeviceSpec) -> (Selector, f64) {
    let set = generate_training_set(dev, 8);
    let model = Selector::train(&set);
    let acc = model.accuracy(&set);
    (model, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_model_is_accurate() {
        // §IV-C claims >90 % selection accuracy.
        let dev = DeviceSpec::rtx3090();
        let (model, acc) = train_default(&dev);
        assert!(acc > 0.90, "accuracy {acc} too low; model {model:?}");
    }

    #[test]
    fn default_model_matches_training_pipeline() {
        let dev = DeviceSpec::rtx3090();
        let set = generate_training_set(&dev, 8);
        let acc = Selector::DEFAULT.accuracy(&set);
        assert!(acc > 0.90, "hard-coded coefficients stale? accuracy {acc}");
    }

    #[test]
    fn boundary_orientation_matches_paper() {
        // Dense window with few columns → Tensor; sparse window with many
        // columns → CUDA (Fig. 1's regimes).
        let s = Selector::DEFAULT;
        let dense_few = WindowFeatures::from_counts(16, 8, 120); // sparsity 0.06
        let sparse_many = WindowFeatures::from_counts(16, 120, 130); // sparsity 0.93
        assert_eq!(s.choose(&dense_few), CoreChoice::Tensor);
        assert_eq!(s.choose(&sparse_many), CoreChoice::Cuda);
    }

    #[test]
    fn train_separable_toy_set() {
        // x1 alone separates: cols < 50 → Tensor, else CUDA.
        let mut set = Vec::new();
        for c in 1..100 {
            let f = WindowFeatures::from_counts(16, c, c * 4);
            let y = if c < 50 {
                CoreChoice::Tensor
            } else {
                CoreChoice::Cuda
            };
            set.push((f, y));
        }
        let m = Selector::train(&set);
        assert!(m.accuracy(&set) > 0.97, "{m:?}");
    }

    #[test]
    fn decision_is_linear_in_features() {
        let s = Selector {
            w1: 2.0,
            w2: -3.0,
            b: 1.0,
        };
        let f = WindowFeatures {
            nnz_cols: 4.0,
            sparsity: 0.5,
        };
        assert!((s.decision_value(&f) - (8.0 - 1.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_set_is_one() {
        assert_eq!(Selector::DEFAULT.accuracy(&[]), 1.0);
    }
}
