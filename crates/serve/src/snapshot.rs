//! Atomic snapshots of the serving front's recoverable state.
//!
//! A snapshot captures everything a restart cannot cheaply re-derive from
//! the event trace: the *post-churn base graph structures* (keyed by
//! [`StructureFingerprint`] — the applied-delta high-water mark for each
//! graph lineage), the cache's per-shard residency in LRU order (so the
//! restarted cache makes identical eviction decisions), the quarantine
//! set, and the cumulative counters at the snapshot's epoch barrier.
//! Prepared [`hc_core::Plan`]s are deliberately **not** serialized: plans
//! are a pure deterministic function of (graph, spec, device), so recovery
//! rebuilds them — warm via [`hc_core::Plan::patch`] replay along the
//! WAL's delta chains where possible — and the snapshot stays small and
//! version-robust.
//!
//! Snapshots are written with [`hc_parallel::fsio::atomic_write`]
//! (temp + fsync + rename, the same helper behind
//! `target/hc-calibration.json`): a crash mid-snapshot leaves the previous
//! snapshot intact, never a torn one. Loading re-validates everything —
//! header, trailing checksum, [`Csr::validate`] per graph, fingerprint
//! match per graph — and maps every defect class to a typed
//! [`RecoveryError`], never a panic.

use std::path::Path;

use graph_sparse::{Csr, StructureFingerprint};

use crate::cache::CacheStats;
use crate::front::FrontCounters;
use crate::wal::{checksum, Dec, Enc, RecoveryError};

/// File magic for snapshot files.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HCSPMMSS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The serving front's recoverable state at one epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The last completed epoch this snapshot covers.
    pub epoch: u64,
    /// Cumulative front counters at the barrier.
    pub counters: FrontCounters,
    /// Cumulative cache statistics at the barrier.
    pub cache: CacheStats,
    /// Every distinct structure resident or mutated so far, at its
    /// applied-delta high-water mark. The fingerprint doubles as the
    /// high-water mark: it names exactly which deltas have been applied.
    pub graphs: Vec<(StructureFingerprint, Csr)>,
    /// Resident plan fingerprints per cache shard, LRU order (oldest
    /// first).
    pub shard_residency: Vec<Vec<StructureFingerprint>>,
    /// The quarantine registry, sorted.
    pub quarantine: Vec<StructureFingerprint>,
}

fn encode_csr(e: &mut Enc, g: &Csr) {
    e.u64(g.nrows as u64);
    e.u64(g.ncols as u64);
    e.u32(g.row_ptr.len() as u32);
    for &v in &g.row_ptr {
        e.u32(v);
    }
    e.u32(g.col_idx.len() as u32);
    for &v in &g.col_idx {
        e.u32(v);
    }
    e.u32(g.vals.len() as u32);
    for &v in &g.vals {
        e.f32(v);
    }
}

fn decode_csr(d: &mut Dec<'_>) -> Option<Csr> {
    let nrows = d.u64()? as usize;
    let ncols = d.u64()? as usize;
    let n_ptr = d.u32()? as usize;
    if n_ptr > d.remaining() / 4 {
        return None;
    }
    let mut row_ptr = Vec::with_capacity(n_ptr);
    for _ in 0..n_ptr {
        row_ptr.push(d.u32()?);
    }
    let n_idx = d.u32()? as usize;
    if n_idx > d.remaining() / 4 {
        return None;
    }
    let mut col_idx = Vec::with_capacity(n_idx);
    for _ in 0..n_idx {
        col_idx.push(d.u32()?);
    }
    let n_vals = d.u32()? as usize;
    if n_vals > d.remaining() / 4 {
        return None;
    }
    let mut vals = Vec::with_capacity(n_vals);
    for _ in 0..n_vals {
        vals.push(d.f32()?);
    }
    Some(Csr {
        nrows,
        ncols,
        row_ptr,
        col_idx,
        vals,
    })
}

fn encode_counters(e: &mut Enc, c: &FrontCounters) {
    for v in [
        c.submitted,
        c.admitted,
        c.rejected_queue,
        c.rejected_quota,
        c.completed,
        c.ok,
        c.degraded,
        c.failed,
        c.cohorts,
        c.cohorted_requests,
        c.epochs,
        c.quarantined_cohorts,
        c.mutations,
        c.patched_plans,
        c.stale_served,
    ] {
        e.u64(v);
    }
}

fn decode_counters(d: &mut Dec<'_>) -> Option<FrontCounters> {
    Some(FrontCounters {
        submitted: d.u64()?,
        admitted: d.u64()?,
        rejected_queue: d.u64()?,
        rejected_quota: d.u64()?,
        completed: d.u64()?,
        ok: d.u64()?,
        degraded: d.u64()?,
        failed: d.u64()?,
        cohorts: d.u64()?,
        cohorted_requests: d.u64()?,
        epochs: d.u64()?,
        quarantined_cohorts: d.u64()?,
        mutations: d.u64()?,
        patched_plans: d.u64()?,
        stale_served: d.u64()?,
    })
}

fn encode_cache_stats(e: &mut Enc, s: &CacheStats) {
    for v in [
        s.requests,
        s.hits,
        s.misses,
        s.evictions,
        s.rejected,
        s.quarantined,
        s.quarantine_misses,
        s.stale_hits,
        s.swaps,
    ] {
        e.u64(v);
    }
}

fn decode_cache_stats(d: &mut Dec<'_>) -> Option<CacheStats> {
    Some(CacheStats {
        requests: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        evictions: d.u64()?,
        rejected: d.u64()?,
        quarantined: d.u64()?,
        quarantine_misses: d.u64()?,
        stale_hits: d.u64()?,
        swaps: d.u64()?,
    })
}

impl Snapshot {
    /// Serialize to the on-disk image: magic, version, payload, trailing
    /// SplitMix64-folded checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.epoch);
        encode_counters(&mut e, &self.counters);
        encode_cache_stats(&mut e, &self.cache);
        e.u32(self.graphs.len() as u32);
        for (fp, g) in &self.graphs {
            e.fp(*fp);
            encode_csr(&mut e, g);
        }
        e.u32(self.shard_residency.len() as u32);
        for shard in &self.shard_residency {
            e.fps(shard);
        }
        e.fps(&self.quarantine);
        let payload = e.into_bytes();

        let mut out = Vec::with_capacity(12 + payload.len() + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = checksum(&[&out]);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Atomically write the snapshot to `path` (temp + fsync + rename):
    /// a crash anywhere inside leaves the previous snapshot readable.
    pub fn save(&self, path: &Path) -> Result<(), RecoveryError> {
        hc_parallel::fsio::atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Load and fully re-validate a snapshot from `path`.
    pub fn load(path: &Path) -> Result<Snapshot, RecoveryError> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// [`Snapshot::load`] over an in-memory image (exposed for the
    /// corruption suite). Every defect class maps to one
    /// [`RecoveryError`] variant; hostile bytes never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, RecoveryError> {
        if bytes.len() < 20 {
            if bytes.get(..bytes.len().min(8)) != Some(&SNAPSHOT_MAGIC[..bytes.len().min(8)]) {
                return Err(RecoveryError::BadMagic);
            }
            return Err(RecoveryError::Truncated {
                offset: bytes.len() as u64,
            });
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        let mut vb = [0u8; 4];
        vb.copy_from_slice(&bytes[8..12]);
        let version = u32::from_le_bytes(vb);
        if version != SNAPSHOT_VERSION {
            return Err(RecoveryError::UnsupportedVersion { found: version });
        }
        let body_end = bytes.len() - 8;
        let mut sb = [0u8; 8];
        sb.copy_from_slice(&bytes[body_end..]);
        if checksum(&[&bytes[..body_end]]) != u64::from_le_bytes(sb) {
            return Err(RecoveryError::ChecksumMismatch { offset: 0 });
        }

        let malformed = |what: &'static str| RecoveryError::Malformed { offset: 12, what };
        let mut d = Dec::new(&bytes[12..body_end]);
        let epoch = d.u64().ok_or(malformed("epoch"))?;
        let counters = decode_counters(&mut d).ok_or(malformed("counters"))?;
        let cache = decode_cache_stats(&mut d).ok_or(malformed("cache stats"))?;
        let n_graphs = d.u32().ok_or(malformed("graph count"))? as usize;
        if n_graphs > bytes.len() {
            return Err(malformed("graph count"));
        }
        let mut graphs = Vec::with_capacity(n_graphs);
        for _ in 0..n_graphs {
            let fp = d.fp().ok_or(malformed("graph fingerprint"))?;
            let g = decode_csr(&mut d).ok_or(malformed("graph payload"))?;
            // The ingest contract (same as every other ingest path):
            // structural validation first, then the fingerprint must match
            // the one the snapshot claims for it.
            g.validate().map_err(RecoveryError::InvalidGraph)?;
            let got = StructureFingerprint::of(&g);
            if got != fp {
                return Err(RecoveryError::FingerprintMismatch { expected: fp, got });
            }
            graphs.push((fp, g));
        }
        let n_shards = d.u32().ok_or(malformed("shard count"))? as usize;
        if n_shards > bytes.len() {
            return Err(malformed("shard count"));
        }
        let mut shard_residency = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shard_residency.push(d.fps().ok_or(malformed("shard residency"))?);
        }
        let quarantine = d.fps().ok_or(malformed("quarantine set"))?;
        if !d.done() {
            return Err(malformed("trailing bytes"));
        }
        Ok(Snapshot {
            epoch,
            counters,
            cache,
            graphs,
            shard_residency,
            quarantine,
        })
    }

    /// Look up a snapshotted graph by fingerprint.
    pub fn graph(&self, fp: StructureFingerprint) -> Option<&Csr> {
        self.graphs.iter().find(|(f, _)| *f == fp).map(|(_, g)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    fn sample() -> Snapshot {
        let g0 = gen::erdos_renyi(96, 400, 7);
        let g1 = gen::community(128, 512, 8, 0.9, 9);
        let f0 = StructureFingerprint::of(&g0);
        let f1 = StructureFingerprint::of(&g1);
        Snapshot {
            epoch: 3,
            counters: FrontCounters {
                submitted: 40,
                admitted: 36,
                epochs: 4,
                ..Default::default()
            },
            cache: CacheStats {
                requests: 36,
                hits: 30,
                misses: 6,
                ..Default::default()
            },
            graphs: vec![(f0, g0), (f1, g1)],
            shard_residency: vec![vec![f0], vec![f1], vec![], vec![]],
            quarantine: vec![],
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let snap = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("hc-snap-{}-rt.bin", std::process::id()));
        snap.save(&path).expect("save");
        let back = Snapshot::load(&path).expect("load");
        assert_eq!(snap, back);
        assert!(back.graph(snap.graphs[0].0).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_replaces_atomically() {
        let mut snap = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("hc-snap-{}-atomic.bin", std::process::id()));
        snap.save(&path).expect("save 1");
        snap.epoch = 9;
        snap.save(&path).expect("save 2");
        assert_eq!(Snapshot::load(&path).expect("load").epoch, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error_or_equal() {
        let clean = sample().to_bytes();
        for i in 0..clean.len() {
            for bit in [0x01u8, 0x80] {
                let mut bytes = clean.clone();
                bytes[i] ^= bit;
                match Snapshot::from_bytes(&bytes) {
                    // A flip in an f32 value changes the graph *and* its
                    // fingerprint+checksum, so Ok can only mean the flip
                    // was somehow absorbed — reject that entirely: the
                    // checksum covers every byte.
                    Ok(_) => panic!("bit flip at byte {i} not detected"),
                    Err(
                        RecoveryError::BadMagic
                        | RecoveryError::UnsupportedVersion { .. }
                        | RecoveryError::ChecksumMismatch { .. }
                        | RecoveryError::Truncated { .. },
                    ) => {}
                    Err(e) => panic!("unexpected error class at byte {i}: {e}"),
                }
            }
        }
    }

    #[test]
    fn truncation_is_typed() {
        let clean = sample().to_bytes();
        for keep in [0, 4, 12, 40, clean.len() - 1] {
            let r = Snapshot::from_bytes(&clean[..keep]);
            assert!(r.is_err(), "truncated to {keep} bytes must not load");
        }
    }
}
