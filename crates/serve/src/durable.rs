//! Crash-safe serving: the [`DurableFront`] wraps a [`Front`] with a
//! write-ahead log ([`crate::wal`]) and periodic snapshots
//! ([`crate::snapshot`]) so that a crash at *any* point — mid-epoch,
//! between a WAL append and its plan swap, mid-snapshot — recovers to a
//! state whose remaining execution is bit-identical to the uncrashed
//! run.
//!
//! ## What is logged vs. rebuilt
//!
//! The log records *decisions*, not *derived state*: every structurally
//! effective mutation goes on the WAL (base fingerprint, post-apply
//! fingerprint, the delta itself) **before** the patched plan is swapped
//! into the cache, and every epoch barrier appends an fsynced marker
//! carrying the cumulative pre-aggregation counters, cache statistics,
//! per-shard residency order and the quarantine set. Plans are *never*
//! serialized: they are deterministic functions of (graph, spec, device)
//! and are rebuilt warm on recovery — `Plan::prepare` at the nearest
//! root-materialized graph, then `Plan::patch` replayed along the logged
//! delta chain, each link verified against its logged fingerprint.
//!
//! ## Delivery = durability
//!
//! An epoch's responses are handed to the client in
//! [`EpochSink::epoch_end`] immediately after the marker fsync, with no
//! crash point between the two. Everything delivered is therefore
//! covered by a durable marker, and everything covered by a marker was
//! delivered: recovery resumes at `marker.epoch + 1` and never
//! re-delivers or drops an epoch.
//!
//! ## Idempotent replay
//!
//! Replay is fingerprint-gated: a delta record whose post-apply graph is
//! already materialized is skipped, so records duplicated by a
//! crash-rerun cycle (an intact-but-unmarked append survives
//! [`Wal::open_append`], then the re-run appends it again) are applied
//! exactly once. [`RecoveryStats::double_applied`] counts violations and
//! is asserted zero by the restart-equivalence suite.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gpu_sim::{crash_requested, CrashConfig, CrashScope, CrashSite, DeviceSpec};
use graph_sparse::{Csr, StructureFingerprint};
use hc_core::{Plan, PlanSpec};

use crate::front::{
    assemble_report, EpochEnd, EpochSink, Front, FrontCounters, FrontEvent, FrontReport,
    FrontResponse, MutationOutcome,
};
use crate::snapshot::Snapshot;
use crate::wal::{DeltaRecord, EpochMarker, RecoveryError, Wal};

/// Where the durability layer keeps its on-disk state.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The write-ahead log file.
    pub wal_path: PathBuf,
    /// The snapshot file (written atomically, temp + rename).
    pub snapshot_path: PathBuf,
    /// Snapshot cadence in epochs (0 ⇒ never snapshot; recovery then
    /// replays the WAL from trace-root graphs alone).
    pub snapshot_every: u64,
}

/// What one recovery did, for the `recovery` bench block and the chaos
/// suite's invariants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// First epoch the resumed run executes (`last marker + 1`).
    pub resume_epoch: u64,
    /// Intact-but-unmarked records rolled back past the last marker.
    pub rolled_back_records: u64,
    /// Torn bytes truncated off the WAL tail.
    pub torn_bytes: u64,
    /// Durable delta records re-applied to materialize graphs.
    pub reapplied_deltas: u64,
    /// Durable delta records skipped because their post-apply graph was
    /// already materialized (idempotent replay).
    pub skipped_duplicates: u64,
    /// Deltas applied more than once — must be zero; the
    /// restart-equivalence suite asserts it.
    pub double_applied: u64,
    /// Plans rebuilt by a full `Plan::prepare`.
    pub full_prepares: u64,
    /// Plan rebuild steps served by `Plan::patch` replay.
    pub patch_replays: u64,
    /// Plans restored into the cache, total.
    pub restored_plans: u64,
    /// Graphs ingested from the snapshot.
    pub restored_graphs: u64,
    /// Simulated cost of the warm plan rebuild (prepare + patch replay);
    /// the bench compares it against re-running the completed prefix
    /// cold.
    pub recovery_sim_ms: f64,
}

/// Why a [`DurableFront::run`] attempt stopped before the trace ended.
enum SinkHalt {
    /// An injected crash fired; unwound to the recovery boundary.
    Crashed(CrashSite),
    /// A real durability error (WAL I/O, encoding) — not recoverable by
    /// rerunning.
    Error(RecoveryError),
}

/// One [`DurableFront::run`] attempt: either the trace completed
/// (`report` is `Some`) or an injected crash stopped it (`crash` is
/// `Some`). `delivered` holds what reached the client either way —
/// crashed attempts keep their delivered epochs, exactly like a real
/// client would.
pub struct RunAttempt {
    /// The attempt's report over the epochs it ran, when it completed.
    pub report: Option<FrontReport>,
    /// Responses delivered at epoch barriers (durable ⇒ delivered).
    pub delivered: Vec<FrontResponse>,
    /// Mutation outcomes delivered at epoch barriers.
    pub delivered_mutations: Vec<MutationOutcome>,
    /// Cumulative pre-aggregation counters at the last completed barrier.
    pub last_counters: FrontCounters,
    /// The crash site, when an injected crash stopped the attempt.
    pub crash: Option<CrashSite>,
}

/// A completed crash/recover/resume cycle from [`run_to_completion`].
pub struct RunOutcome {
    /// The merged report: delivered responses from every attempt,
    /// aggregated exactly like an uncrashed [`Front::run_events`].
    pub report: FrontReport,
    /// Attempts executed (1 ⇒ no crash fired).
    pub attempts: u64,
    /// Sites of the injected crashes, in firing order.
    pub crashes: Vec<CrashSite>,
    /// Per-recovery statistics, one entry per crash.
    pub recoveries: Vec<RecoveryStats>,
    /// Total crash points encountered across every attempt; with
    /// [`CrashConfig::off`] this is the schedule horizon for a sweep.
    pub crash_points: u64,
}

/// A [`Front`] whose mutations are write-ahead logged and whose
/// recoverable state snapshots atomically. Build with
/// [`create`](DurableFront::create) (fresh WAL) or
/// [`recover`](DurableFront::recover) (rebuild from disk), then
/// [`run`](DurableFront::run) the trace.
pub struct DurableFront {
    front: Front,
    wal: Wal,
    cfg: DurabilityConfig,
    resume_epoch: usize,
    counters_seed: FrontCounters,
    /// Graph materializations by fingerprint: trace roots plus every
    /// graph produced by a logged delta. Snapshots clone resident
    /// graphs out of this map.
    graphs: HashMap<StructureFingerprint, Arc<Csr>>,
}

impl DurableFront {
    /// Fresh durable front: truncates/creates the WAL at
    /// `cfg.wal_path`. Any existing snapshot is superseded once the
    /// first new one is written.
    pub fn create(front: Front, cfg: DurabilityConfig) -> Result<DurableFront, RecoveryError> {
        let wal = Wal::create(&cfg.wal_path)?;
        Ok(DurableFront {
            front,
            wal,
            cfg,
            resume_epoch: 0,
            counters_seed: FrontCounters::default(),
            graphs: HashMap::new(),
        })
    }

    /// Rebuild a durable front from disk after a crash: roll the WAL
    /// back to its last fsynced marker, ingest the snapshot if one
    /// exists, re-materialize graphs by fingerprint-gated delta replay,
    /// rebuild resident plans warm (prepare at the nearest root, patch
    /// forward along the logged chain) and seed counters so the resumed
    /// run continues the uncrashed numbering.
    ///
    /// `front` must be fresh (its cache is populated here) and `events`
    /// must be the same trace the crashed run was executing — the trace
    /// is the event source mutations are re-applied from.
    pub fn recover(
        front: Front,
        cfg: DurabilityConfig,
        events: &[FrontEvent],
        dev: &DeviceSpec,
    ) -> Result<(DurableFront, RecoveryStats), RecoveryError> {
        let (wal, replay) = Wal::open_append(&cfg.wal_path)?;
        let mut stats = RecoveryStats {
            rolled_back_records: replay.rolled_back_records,
            torn_bytes: replay.torn_bytes,
            ..RecoveryStats::default()
        };
        let marker = match replay.last_marker() {
            Some(m) => m.clone(),
            None => {
                // Nothing durable yet: the crash predated the first
                // epoch barrier. Start the trace from scratch.
                return Ok((
                    DurableFront {
                        front,
                        wal,
                        cfg,
                        resume_epoch: 0,
                        counters_seed: FrontCounters::default(),
                        graphs: HashMap::new(),
                    },
                    stats,
                ));
            }
        };
        if marker.shard_residency.len() != front.cache().shard_count() {
            return Err(RecoveryError::ShardCountMismatch {
                expected: marker.shard_residency.len() as u32,
                found: front.cache().shard_count() as u32,
            });
        }

        // Root-materialized graphs: available without applying any
        // delta — the trace's own graphs plus the snapshot's.
        let mut roots = trace_graphs(events);
        if cfg.snapshot_path.exists() {
            let snap = Snapshot::load(&cfg.snapshot_path)?;
            stats.restored_graphs = snap.graphs.len() as u64;
            for (fp, g) in snap.graphs {
                roots.entry(fp).or_insert_with(|| Arc::new(g));
            }
        }

        // Materialize every durable delta's post-apply graph,
        // fingerprint-gated so duplicated records apply exactly once.
        let mut mat = roots.clone();
        let mut links: HashMap<StructureFingerprint, &DeltaRecord> = HashMap::new();
        let mut applied: HashSet<u64> = HashSet::new();
        for rec in replay.durable_deltas() {
            links.entry(rec.new_fp).or_insert(rec);
            if mat.contains_key(&rec.new_fp) {
                stats.skipped_duplicates += 1;
                continue;
            }
            let base = mat
                .get(&rec.base_fp)
                .ok_or(RecoveryError::MissingBase(rec.base_fp))?;
            let g = rec.delta.apply(base).map_err(RecoveryError::InvalidDelta)?;
            let got = StructureFingerprint::of(&g);
            if got != rec.new_fp {
                return Err(RecoveryError::FingerprintMismatch {
                    expected: rec.new_fp,
                    got,
                });
            }
            if !applied.insert(rec.trace_index) {
                stats.double_applied += 1;
            }
            stats.reapplied_deltas += 1;
            mat.insert(rec.new_fp, Arc::new(g));
        }

        // Seed the cache: statistics, quarantine lineage, then resident
        // plans in logged LRU order (oldest first) so eviction behaves
        // as if the cache never went away.
        front.cache().seed_stats(marker.cache);
        front.cache().restore_quarantine(&marker.quarantine);
        let spec = front.cache().spec();
        for shard in &marker.shard_residency {
            for &fp in shard {
                let plan = rebuild_plan(fp, &roots, &mat, &links, spec, dev, &mut stats)?;
                stats.restored_plans += 1;
                front.cache().restore_resident(Arc::new(plan));
            }
        }

        stats.resume_epoch = marker.epoch + 1;
        Ok((
            DurableFront {
                front,
                wal,
                cfg,
                resume_epoch: (marker.epoch + 1) as usize,
                counters_seed: marker.counters,
                graphs: mat,
            },
            stats,
        ))
    }

    /// The wrapped front.
    pub fn front(&self) -> &Front {
        &self.front
    }

    /// First epoch [`run`](DurableFront::run) will execute.
    pub fn resume_epoch(&self) -> usize {
        self.resume_epoch
    }

    /// Run (or resume) the trace under durability hooks. An injected
    /// crash is *not* an error: the attempt comes back with
    /// [`RunAttempt::crash`] set and whatever it delivered before the
    /// crash. `Err` is reserved for genuine durability failures.
    pub fn run(
        &mut self,
        events: &[FrontEvent],
        dev: &DeviceSpec,
    ) -> Result<RunAttempt, RecoveryError> {
        for (fp, g) in trace_graphs(events) {
            self.graphs.entry(fp).or_insert(g);
        }
        let mut sink = DurableSink {
            wal: &mut self.wal,
            cache: self.front.cache(),
            cfg: &self.cfg,
            graphs: &mut self.graphs,
            delivered: Vec::new(),
            delivered_mutations: Vec::new(),
            last_counters: self.counters_seed,
        };
        match self.front.run_events_from(
            events,
            dev,
            self.resume_epoch,
            self.counters_seed,
            &mut sink,
        ) {
            Ok(report) => Ok(RunAttempt {
                report: Some(report),
                delivered: sink.delivered,
                delivered_mutations: sink.delivered_mutations,
                last_counters: sink.last_counters,
                crash: None,
            }),
            Err(SinkHalt::Crashed(site)) => Ok(RunAttempt {
                report: None,
                delivered: sink.delivered,
                delivered_mutations: sink.delivered_mutations,
                last_counters: sink.last_counters,
                crash: Some(site),
            }),
            Err(SinkHalt::Error(e)) => Err(e),
        }
    }
}

/// Run a trace to completion under an injected crash schedule:
/// create → run; on a crash, recover from disk with a *fresh* front
/// (in-memory state is deliberately discarded) and resume; merge what
/// every attempt delivered into one report aggregated exactly like an
/// uncrashed run.
///
/// `mk_front` must build equivalent fronts (same cache budget, spec,
/// shard count and config) — recovery checks the shard count and trusts
/// the rest.
pub fn run_to_completion(
    mk_front: &dyn Fn() -> Front,
    cfg: &DurabilityConfig,
    events: &[FrontEvent],
    dev: &DeviceSpec,
    crash: CrashConfig,
) -> Result<RunOutcome, RecoveryError> {
    let t0 = Instant::now();
    let scope = CrashScope::install(crash);
    let mut delivered: Vec<FrontResponse> = Vec::new();
    let mut delivered_mutations: Vec<MutationOutcome> = Vec::new();
    let mut crashes: Vec<CrashSite> = Vec::new();
    let mut recoveries: Vec<RecoveryStats> = Vec::new();
    let mut attempts = 0u64;
    let mut df = DurableFront::create(mk_front(), cfg.clone())?;
    loop {
        attempts += 1;
        if attempts > 8 {
            // A crash fires at most once per scope, so this loop
            // converges in two attempts; more means the WAL is not
            // advancing the resume point.
            return Err(RecoveryError::Malformed {
                offset: 0,
                what: "crash/recovery loop did not converge",
            });
        }
        let attempt = df.run(events, dev)?;
        delivered.extend(attempt.delivered);
        delivered_mutations.extend(attempt.delivered_mutations);
        match attempt.crash {
            None => {
                delivered.sort_by_key(|r| r.trace_index);
                delivered_mutations.sort_by_key(|m| m.trace_index);
                let slo = df.front.config().slo_sim_ms;
                let report = assemble_report(
                    delivered,
                    attempt.last_counters,
                    delivered_mutations,
                    df.front.cache().stats(),
                    slo,
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                return Ok(RunOutcome {
                    report,
                    attempts,
                    crashes,
                    recoveries,
                    crash_points: scope.points(),
                });
            }
            Some(site) => {
                crashes.push(site);
                let (next, stats) = DurableFront::recover(mk_front(), cfg.clone(), events, dev)?;
                recoveries.push(stats);
                df = next;
            }
        }
    }
}

/// Every graph the trace itself carries, by fingerprint: serve-request
/// graphs and mutation bases. These are "root-materialized" — recovery
/// gets them for free, without applying any delta.
fn trace_graphs(events: &[FrontEvent]) -> HashMap<StructureFingerprint, Arc<Csr>> {
    let mut m: HashMap<StructureFingerprint, Arc<Csr>> = HashMap::new();
    for ev in events {
        let g = match ev {
            FrontEvent::Serve(fr) => &fr.request.graph,
            FrontEvent::Mutate(mu) => &mu.base,
        };
        m.entry(StructureFingerprint::of(g))
            .or_insert_with(|| Arc::clone(g));
    }
    m
}

/// Rebuild one resident plan warm: walk the logged delta chain back
/// from `fp` to the nearest root-materialized graph, `Plan::prepare`
/// there, then `Plan::patch` forward along the chain, verifying each
/// link's fingerprint against the log. Any defect (broken chain, patch
/// refusal, fingerprint drift) falls back to a full prepare at the tip.
fn rebuild_plan(
    fp: StructureFingerprint,
    roots: &HashMap<StructureFingerprint, Arc<Csr>>,
    mat: &HashMap<StructureFingerprint, Arc<Csr>>,
    links: &HashMap<StructureFingerprint, &DeltaRecord>,
    spec: PlanSpec,
    dev: &DeviceSpec,
    stats: &mut RecoveryStats,
) -> Result<Plan, RecoveryError> {
    let mut chain: Vec<&DeltaRecord> = Vec::new();
    let mut cur = fp;
    let mut seen: HashSet<StructureFingerprint> = HashSet::new();
    while !roots.contains_key(&cur) {
        if !seen.insert(cur) {
            break;
        }
        match links.get(&cur) {
            Some(&rec) => {
                chain.push(rec);
                cur = rec.base_fp;
            }
            None => break,
        }
    }
    if let Some(root) = roots.get(&cur) {
        let mut plan = Plan::prepare(root, spec, dev);
        stats.full_prepares += 1;
        stats.recovery_sim_ms += plan.sim_prepare_ms();
        let mut replayed = true;
        for rec in chain.iter().rev() {
            let Some(base) = mat.get(&rec.base_fp) else {
                replayed = false;
                break;
            };
            match plan.patch(base, &rec.delta, dev) {
                Ok(p) if p.fingerprint == rec.new_fp => {
                    stats.patch_replays += 1;
                    stats.recovery_sim_ms += p.sim_prepare_ms();
                    plan = p;
                }
                _ => {
                    replayed = false;
                    break;
                }
            }
        }
        if replayed && plan.fingerprint == fp {
            return Ok(plan);
        }
    }
    let tip = mat.get(&fp).ok_or(RecoveryError::MissingBase(fp))?;
    let plan = Plan::prepare(tip, spec, dev);
    stats.full_prepares += 1;
    stats.recovery_sim_ms += plan.sim_prepare_ms();
    Ok(plan)
}

/// The durability hooks [`Front::run_events_from`] calls at its
/// recovery boundaries. Crash points are polled in a fixed order —
/// mid-epoch, then per mutation (mid-append, between append and swap),
/// then mid-snapshot on snapshot epochs — so a seeded schedule is a
/// deterministic function of the trace.
struct DurableSink<'a> {
    wal: &'a mut Wal,
    cache: &'a crate::shared::SharedPlanCache,
    cfg: &'a DurabilityConfig,
    graphs: &'a mut HashMap<StructureFingerprint, Arc<Csr>>,
    delivered: Vec<FrontResponse>,
    delivered_mutations: Vec<MutationOutcome>,
    last_counters: FrontCounters,
}

impl EpochSink for DurableSink<'_> {
    type Halt = SinkHalt;

    fn mid_epoch(&mut self, _epoch: usize) -> Result<(), SinkHalt> {
        if crash_requested(CrashSite::MidEpoch) {
            return Err(SinkHalt::Crashed(CrashSite::MidEpoch));
        }
        Ok(())
    }

    fn log_mutation(
        &mut self,
        epoch: usize,
        trace_index: usize,
        base_fp: StructureFingerprint,
        new_fp: StructureFingerprint,
        delta: &graph_sparse::DeltaCsr,
    ) -> Result<(), SinkHalt> {
        let rec = DeltaRecord {
            epoch: epoch as u64,
            trace_index: trace_index as u64,
            base_fp,
            new_fp,
            delta: delta.clone(),
        };
        if crash_requested(CrashSite::MidWalAppend) {
            // Die with the record half-written: the torn tail must roll
            // back on recovery.
            self.wal
                .append_delta_torn(&rec, usize::MAX)
                .map_err(SinkHalt::Error)?;
            return Err(SinkHalt::Crashed(CrashSite::MidWalAppend));
        }
        self.wal.append_delta(&rec).map_err(SinkHalt::Error)?;
        if !self.graphs.contains_key(&new_fp) {
            if let Some(base) = self.graphs.get(&base_fp) {
                if let Ok(g) = delta.apply(base) {
                    self.graphs.insert(new_fp, Arc::new(g));
                }
            }
        }
        if crash_requested(CrashSite::BetweenAppendAndSwap) {
            // The record is intact on disk but its swap never happened
            // and no marker covers it: recovery must roll it back, and
            // the re-run re-appends it (idempotent replay absorbs the
            // duplicate).
            return Err(SinkHalt::Crashed(CrashSite::BetweenAppendAndSwap));
        }
        Ok(())
    }

    fn epoch_end(&mut self, end: EpochEnd<'_>) -> Result<(), SinkHalt> {
        let (shard_residency, quarantine) = self.cache.collect_recoverable();
        let marker = EpochMarker {
            epoch: end.epoch as u64,
            counters: *end.counters,
            cache: self.cache.stats(),
            shard_residency,
            quarantine,
        };
        self.wal.append_marker(&marker).map_err(SinkHalt::Error)?;
        // Durable ⇒ delivered: no crash point between the marker fsync
        // above and handing this epoch's responses to the client.
        self.delivered
            .extend(end.responses.iter().filter_map(|s| s.clone()));
        self.delivered_mutations
            .extend(end.mutations.iter().cloned());
        self.last_counters = *end.counters;

        if self.cfg.snapshot_every > 0
            && (end.epoch as u64 + 1).is_multiple_of(self.cfg.snapshot_every)
        {
            if crash_requested(CrashSite::MidSnapshot) {
                // A crash mid-snapshot leaves a stray temp file but
                // never replaces the previous snapshot (temp + rename).
                let mut tmp = self.cfg.snapshot_path.as_os_str().to_owned();
                tmp.push(".tmp");
                let _ = std::fs::write(PathBuf::from(tmp), b"torn snapshot write");
                return Err(SinkHalt::Crashed(CrashSite::MidSnapshot));
            }
            let mut graphs: Vec<(StructureFingerprint, Csr)> = Vec::new();
            for shard in &marker.shard_residency {
                for &fp in shard {
                    if let Some(g) = self.graphs.get(&fp) {
                        graphs.push((fp, (**g).clone()));
                    }
                }
            }
            let snap = Snapshot {
                epoch: marker.epoch,
                counters: marker.counters,
                cache: marker.cache,
                graphs,
                shard_residency: marker.shard_residency,
                quarantine: marker.quarantine,
            };
            snap.save(&self.cfg.snapshot_path)
                .map_err(SinkHalt::Error)?;
        }
        Ok(())
    }
}
