//! Append-only, checksummed write-ahead log of applied structure deltas.
//!
//! The serving front keeps every byte of its mutable state in memory: the
//! post-churn graphs, the [`SharedPlanCache`](crate::SharedPlanCache)
//! contents, the quarantine registry, the traffic counters. A crash
//! mid-trace would lose the graphs' post-churn structure and force a cold
//! re-prepare of every resident plan (~13× one SpMM each). The WAL is the
//! first half of the durability answer (the other half is
//! [`snapshot`](crate::snapshot)): before a patched plan is swapped in,
//! the delta that produced it is appended here, together with the
//! fingerprints of the structure before and after the apply. Recovery is
//! then pure replay of pinned-deterministic code — deltas are re-applied
//! and verified against the logged post-apply fingerprint, plans are
//! rebuilt (never serialized).
//!
//! ## On-disk format
//!
//! A 12-byte header (8-byte magic, little-endian `u32` version) followed
//! by length-prefixed records:
//!
//! ```text
//! [u32 len] [u8 kind] [payload: len-1 bytes] [u64 checksum]
//! ```
//!
//! `len` covers the kind byte plus the payload; the checksum is a
//! SplitMix64 fold over the length prefix, the kind and the payload. All
//! integers are little-endian. Two record kinds exist: a **delta record**
//! (one applied [`DeltaCsr`] with its base/post-apply fingerprints and
//! trace position) and an **epoch marker** (the fsync point: cumulative
//! counters, cache statistics, per-shard cache residency in LRU order and
//! the quarantine set at an epoch barrier). [`Wal::append_marker`] calls
//! `sync_all` after the write, so everything up to and including the last
//! marker is durable; delta records after the last marker are not.
//!
//! ## Torn tails and idempotent replay
//!
//! [`Wal::replay`] scans records sequentially and stops at the first
//! defect (truncated record, checksum mismatch, unknown kind, malformed
//! payload). A defective tail is *not* an error: recovery rolls back to
//! the last marker — exactly the durability contract — and the dropped
//! mutations are re-applied from the event trace. Re-running the crashed
//! epoch re-appends equivalent delta records, so the log may legitimately
//! contain duplicates; replay is idempotent because applying a delta is
//! gated on the logged base fingerprint matching the current structure
//! (already at the post-apply fingerprint ⇒ skip, never double-apply).
//! Only an unusable header ([`RecoveryError::BadMagic`],
//! [`RecoveryError::UnsupportedVersion`]) is a hard replay error.

use std::fmt;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

use graph_sparse::{CsrError, DeltaCsr, DeltaError, StructureFingerprint};

use crate::cache::CacheStats;
use crate::front::FrontCounters;

/// File magic for WAL files.
pub const WAL_MAGIC: [u8; 8] = *b"HCSPMMWL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the file header (magic + version).
const HEADER_LEN: u64 = 12;
/// Ceiling on a single record's declared length: a bit-flip in the length
/// prefix must not turn into a giant allocation.
const MAX_RECORD_LEN: u32 = 1 << 28;

const KIND_DELTA: u8 = 1;
const KIND_MARKER: u8 = 2;

/// Typed defect classes for snapshot/WAL ingest, mirroring the
/// [`DeltaError`] pattern: hostile or bit-flipped bytes map to exactly one
/// variant and never a panic.
#[derive(Debug)]
pub enum RecoveryError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is not one this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends mid-record (or mid-header).
    Truncated {
        /// Byte offset where the truncation was detected.
        offset: u64,
    },
    /// A record's stored checksum does not match its contents.
    ChecksumMismatch {
        /// Byte offset of the failing record's length prefix.
        offset: u64,
    },
    /// A record declares a kind this build does not know.
    UnknownRecordKind {
        /// The unknown kind byte.
        kind: u8,
        /// Byte offset of the record's length prefix.
        offset: u64,
    },
    /// A record's payload does not decode as its kind's layout.
    Malformed {
        /// Byte offset of the record's length prefix.
        offset: u64,
        /// Which field failed to decode.
        what: &'static str,
    },
    /// A logged delta fails [`DeltaCsr`] validation on ingest.
    InvalidDelta(DeltaError),
    /// A snapshotted graph fails [`graph_sparse::Csr::validate`] on
    /// ingest.
    InvalidGraph(CsrError),
    /// Replaying a delta produced a structure whose fingerprint does not
    /// match the logged post-apply fingerprint (payload corruption that
    /// slipped past the checksum, or a stale record).
    FingerprintMismatch {
        /// The fingerprint the log promised.
        expected: StructureFingerprint,
        /// The fingerprint replay produced.
        got: StructureFingerprint,
    },
    /// Recovery needs a base structure the snapshot/WAL does not provide.
    MissingBase(StructureFingerprint),
    /// The snapshot was taken with a different cache shard count than the
    /// recovering front is configured for.
    ShardCountMismatch {
        /// Shards recorded in the snapshot.
        expected: u32,
        /// Shards the recovering front is configured with.
        found: u32,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery io error: {e}"),
            RecoveryError::BadMagic => f.write_str("bad file magic (not a WAL/snapshot)"),
            RecoveryError::UnsupportedVersion { found } => {
                write!(f, "unsupported format version {found}")
            }
            RecoveryError::Truncated { offset } => {
                write!(f, "file truncated mid-record at byte {offset}")
            }
            RecoveryError::ChecksumMismatch { offset } => {
                write!(f, "record checksum mismatch at byte {offset}")
            }
            RecoveryError::UnknownRecordKind { kind, offset } => {
                write!(f, "unknown record kind {kind} at byte {offset}")
            }
            RecoveryError::Malformed { offset, what } => {
                write!(f, "malformed record at byte {offset}: bad {what}")
            }
            RecoveryError::InvalidDelta(e) => write!(f, "logged delta fails validation: {e}"),
            RecoveryError::InvalidGraph(e) => write!(f, "snapshotted graph fails validation: {e}"),
            RecoveryError::FingerprintMismatch { expected, got } => write!(
                f,
                "post-apply fingerprint mismatch: expected {}, got {}",
                expected.to_hex(),
                got.to_hex()
            ),
            RecoveryError::MissingBase(fp) => {
                write!(f, "no base structure for fingerprint {}", fp.to_hex())
            }
            RecoveryError::ShardCountMismatch { expected, found } => write!(
                f,
                "snapshot has {expected} cache shards, front configured with {found}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::InvalidDelta(e) => Some(e),
            RecoveryError::InvalidGraph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> RecoveryError {
        RecoveryError::Io(e)
    }
}

/// SplitMix64 finalizer — the workspace's standard deterministic mixer.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64 fold over a byte string: the length seeds the state, then
/// each little-endian 8-byte chunk (zero-padded tail) is mixed in. Not
/// cryptographic — it catches torn writes and random corruption, which is
/// the WAL's threat model.
pub(crate) fn checksum(parts: &[&[u8]]) -> u64 {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut state = splitmix(0x4843_574c ^ total as u64); // "HCWL"
    let mut carry = [0u8; 8];
    let mut fill = 0usize;
    for part in parts {
        for &b in *part {
            carry[fill] = b;
            fill += 1;
            if fill == 8 {
                state = splitmix(state ^ u64::from_le_bytes(carry));
                fill = 0;
            }
        }
    }
    if fill > 0 {
        carry[fill..].fill(0);
        state = splitmix(state ^ u64::from_le_bytes(carry));
    }
    state
}

/// Little-endian byte-string encoder shared by the WAL and snapshot
/// formats.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc::default()
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub(crate) fn fp(&mut self, fp: StructureFingerprint) {
        self.u64(fp.lo);
        self.u64(fp.hi);
    }

    pub(crate) fn fps(&mut self, fps: &[StructureFingerprint]) {
        self.u32(fps.len() as u32);
        for &fp in fps {
            self.fp(fp);
        }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder: every read can fail (hostile
/// bytes), no read panics.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    pub(crate) fn f32(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    pub(crate) fn fp(&mut self) -> Option<StructureFingerprint> {
        let lo = self.u64()?;
        let hi = self.u64()?;
        Some(StructureFingerprint { lo, hi })
    }

    pub(crate) fn fps(&mut self) -> Option<Vec<StructureFingerprint>> {
        let n = self.u32()? as usize;
        // A corrupted count must not pre-allocate unbounded memory.
        if n > self.remaining() / 16 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.fp()?);
        }
        Some(out)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One applied mutation, logged before its patched plan is swapped in.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    /// Scheduling epoch the mutation fell into.
    pub epoch: u64,
    /// Global position in the event trace.
    pub trace_index: u64,
    /// Fingerprint of the structure the delta applies to.
    pub base_fp: StructureFingerprint,
    /// Fingerprint the structure must have after the apply — the
    /// idempotence and corruption check for replay.
    pub new_fp: StructureFingerprint,
    /// The edge insert/delete batch itself.
    pub delta: DeltaCsr,
}

/// The fsync-point record written at each epoch barrier: everything a
/// restart needs to resume *after* this epoch as if it never stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMarker {
    /// The epoch this marker commits (all epochs `<= epoch` are durable).
    pub epoch: u64,
    /// Cumulative front counters at the barrier.
    pub counters: FrontCounters,
    /// Cumulative cache statistics at the barrier.
    pub cache: CacheStats,
    /// Resident plan fingerprints per cache shard, LRU order (oldest
    /// first) — restoring this order reproduces eviction decisions.
    pub shard_residency: Vec<Vec<StructureFingerprint>>,
    /// The quarantine registry at the barrier, sorted.
    pub quarantine: Vec<StructureFingerprint>,
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An applied mutation (not yet necessarily durable).
    Delta(DeltaRecord),
    /// An epoch barrier fsync point.
    Marker(EpochMarker),
}

fn encode_counters(e: &mut Enc, c: &FrontCounters) {
    for v in [
        c.submitted,
        c.admitted,
        c.rejected_queue,
        c.rejected_quota,
        c.completed,
        c.ok,
        c.degraded,
        c.failed,
        c.cohorts,
        c.cohorted_requests,
        c.epochs,
        c.quarantined_cohorts,
        c.mutations,
        c.patched_plans,
        c.stale_served,
    ] {
        e.u64(v);
    }
}

fn decode_counters(d: &mut Dec<'_>) -> Option<FrontCounters> {
    Some(FrontCounters {
        submitted: d.u64()?,
        admitted: d.u64()?,
        rejected_queue: d.u64()?,
        rejected_quota: d.u64()?,
        completed: d.u64()?,
        ok: d.u64()?,
        degraded: d.u64()?,
        failed: d.u64()?,
        cohorts: d.u64()?,
        cohorted_requests: d.u64()?,
        epochs: d.u64()?,
        quarantined_cohorts: d.u64()?,
        mutations: d.u64()?,
        patched_plans: d.u64()?,
        stale_served: d.u64()?,
    })
}

fn encode_cache_stats(e: &mut Enc, s: &CacheStats) {
    for v in [
        s.requests,
        s.hits,
        s.misses,
        s.evictions,
        s.rejected,
        s.quarantined,
        s.quarantine_misses,
        s.stale_hits,
        s.swaps,
    ] {
        e.u64(v);
    }
}

fn decode_cache_stats(d: &mut Dec<'_>) -> Option<CacheStats> {
    Some(CacheStats {
        requests: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        evictions: d.u64()?,
        rejected: d.u64()?,
        quarantined: d.u64()?,
        quarantine_misses: d.u64()?,
        stale_hits: d.u64()?,
        swaps: d.u64()?,
    })
}

pub(crate) fn encode_delta(e: &mut Enc, delta: &DeltaCsr) {
    e.u64(delta.nrows() as u64);
    e.u64(delta.ncols() as u64);
    e.u32(delta.inserts().len() as u32);
    e.u32(delta.deletes().len() as u32);
    for &(r, c, v) in delta.inserts() {
        e.u32(r);
        e.u32(c);
        e.f32(v);
    }
    for &(r, c) in delta.deletes() {
        e.u32(r);
        e.u32(c);
    }
}

/// Decode and *re-validate* a delta: the bytes may be hostile, so the
/// batch goes back through [`DeltaCsr::new`]'s full validation.
pub(crate) fn decode_delta(d: &mut Dec<'_>) -> Result<DeltaCsr, Option<DeltaError>> {
    let nrows = d.u64().ok_or(None)? as usize;
    let ncols = d.u64().ok_or(None)? as usize;
    let n_ins = d.u32().ok_or(None)? as usize;
    let n_del = d.u32().ok_or(None)? as usize;
    // Each insert is 12 bytes, each delete 8: reject counts the payload
    // cannot hold before allocating.
    if n_ins > d.remaining() / 12 || n_del > d.remaining() / 8 {
        return Err(None);
    }
    let mut inserts = Vec::with_capacity(n_ins);
    for _ in 0..n_ins {
        let r = d.u32().ok_or(None)?;
        let c = d.u32().ok_or(None)?;
        let v = d.f32().ok_or(None)?;
        inserts.push((r, c, v));
    }
    let mut deletes = Vec::with_capacity(n_del);
    for _ in 0..n_del {
        let r = d.u32().ok_or(None)?;
        let c = d.u32().ok_or(None)?;
        deletes.push((r, c));
    }
    DeltaCsr::new(nrows, ncols, inserts, deletes).map_err(Some)
}

fn encode_record_payload(rec: &WalRecord) -> (u8, Vec<u8>) {
    let mut e = Enc::new();
    match rec {
        WalRecord::Delta(r) => {
            e.u64(r.epoch);
            e.u64(r.trace_index);
            e.fp(r.base_fp);
            e.fp(r.new_fp);
            encode_delta(&mut e, &r.delta);
            (KIND_DELTA, e.into_bytes())
        }
        WalRecord::Marker(m) => {
            e.u64(m.epoch);
            encode_counters(&mut e, &m.counters);
            encode_cache_stats(&mut e, &m.cache);
            e.u32(m.shard_residency.len() as u32);
            for shard in &m.shard_residency {
                e.fps(shard);
            }
            e.fps(&m.quarantine);
            (KIND_MARKER, e.into_bytes())
        }
    }
}

/// Serialize one record to its on-disk framing (length prefix, kind,
/// payload, checksum).
fn frame_record(rec: &WalRecord) -> Vec<u8> {
    let (kind, payload) = encode_record_payload(rec);
    let len = (payload.len() + 1) as u32;
    let len_bytes = len.to_le_bytes();
    let sum = checksum(&[&len_bytes, &[kind], &payload]);
    let mut out = Vec::with_capacity(4 + 1 + payload.len() + 8);
    out.extend_from_slice(&len_bytes);
    out.push(kind);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn decode_record_payload(
    kind: u8,
    payload: &[u8],
    offset: u64,
) -> Result<WalRecord, RecoveryError> {
    let malformed = |what: &'static str| RecoveryError::Malformed { offset, what };
    let mut d = Dec::new(payload);
    match kind {
        KIND_DELTA => {
            let epoch = d.u64().ok_or(malformed("epoch"))?;
            let trace_index = d.u64().ok_or(malformed("trace index"))?;
            let base_fp = d.fp().ok_or(malformed("base fingerprint"))?;
            let new_fp = d.fp().ok_or(malformed("post-apply fingerprint"))?;
            let delta = decode_delta(&mut d).map_err(|e| match e {
                Some(de) => RecoveryError::InvalidDelta(de),
                None => malformed("delta payload"),
            })?;
            if !d.done() {
                return Err(malformed("trailing bytes"));
            }
            Ok(WalRecord::Delta(DeltaRecord {
                epoch,
                trace_index,
                base_fp,
                new_fp,
                delta,
            }))
        }
        KIND_MARKER => {
            let epoch = d.u64().ok_or(malformed("epoch"))?;
            let counters = decode_counters(&mut d).ok_or(malformed("counters"))?;
            let cache = decode_cache_stats(&mut d).ok_or(malformed("cache stats"))?;
            let n_shards = d.u32().ok_or(malformed("shard count"))? as usize;
            if n_shards > payload.len() {
                return Err(malformed("shard count"));
            }
            let mut shard_residency = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                shard_residency.push(d.fps().ok_or(malformed("shard residency"))?);
            }
            let quarantine = d.fps().ok_or(malformed("quarantine set"))?;
            if !d.done() {
                return Err(malformed("trailing bytes"));
            }
            Ok(WalRecord::Marker(EpochMarker {
                epoch,
                counters,
                cache,
                shard_residency,
                quarantine,
            }))
        }
        kind => Err(RecoveryError::UnknownRecordKind { kind, offset }),
    }
}

/// The result of scanning a WAL file: every intact record in order, plus
/// where (and why) the scan stopped.
#[derive(Debug)]
pub struct WalReplay {
    /// All intact records, in append order — including delta records after
    /// the last marker (applied but never committed; recovery ignores them
    /// for state and the re-run re-appends equivalents).
    pub records: Vec<WalRecord>,
    /// Index into `records` of the last epoch marker, if any.
    pub last_marker: Option<usize>,
    /// File offset just past the last intact record (where an append
    /// should resume after truncating the defective tail).
    pub intact_len: u64,
    /// Bytes of defective tail dropped by the scan.
    pub torn_bytes: u64,
    /// Why the scan stopped early, if it did (`None` = clean end of
    /// file). A torn tail is data loss already covered by the rollback
    /// contract, not a hard error.
    pub tail_defect: Option<RecoveryError>,
    /// Intact records past the last marker — rolled back by recovery and
    /// re-applied from the event trace.
    pub rolled_back_records: u64,
}

impl WalReplay {
    /// The last committed epoch marker, if any.
    pub fn last_marker(&self) -> Option<&EpochMarker> {
        self.last_marker.and_then(|i| match self.records.get(i) {
            Some(WalRecord::Marker(m)) => Some(m),
            _ => None,
        })
    }

    /// Delta records up to and including the last marker — the durable
    /// mutation history recovery replays.
    pub fn durable_deltas(&self) -> impl Iterator<Item = &DeltaRecord> {
        let end = self.last_marker.map_or(0, |i| i + 1);
        self.records[..end].iter().filter_map(|r| match r {
            WalRecord::Delta(d) => Some(d),
            WalRecord::Marker(_) => None,
        })
    }
}

/// An open write-ahead log.
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    /// Records appended since open (for reports).
    appended: u64,
}

impl Wal {
    /// Create a fresh WAL at `path` (truncating any existing file) and
    /// write the header.
    pub fn create(path: &Path) -> Result<Wal, RecoveryError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            appended: 0,
        })
    }

    /// Scan the WAL at `path` without opening it for writing. See
    /// [`WalReplay`] for the rollback semantics.
    pub fn replay(path: &Path) -> Result<WalReplay, RecoveryError> {
        let bytes = std::fs::read(path)?;
        Self::replay_bytes(&bytes)
    }

    /// [`Wal::replay`] over an in-memory image (exposed for the
    /// corruption suite).
    pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, RecoveryError> {
        if bytes.len() < HEADER_LEN as usize {
            if bytes.get(..bytes.len().min(8)) != Some(&WAL_MAGIC[..bytes.len().min(8)]) {
                return Err(RecoveryError::BadMagic);
            }
            return Err(RecoveryError::Truncated {
                offset: bytes.len() as u64,
            });
        }
        if bytes[..8] != WAL_MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        let mut vb = [0u8; 4];
        vb.copy_from_slice(&bytes[8..12]);
        let version = u32::from_le_bytes(vb);
        if version != WAL_VERSION {
            return Err(RecoveryError::UnsupportedVersion { found: version });
        }

        let mut records = Vec::new();
        let mut last_marker = None;
        let mut pos = HEADER_LEN as usize;
        let mut tail_defect = None;
        while pos < bytes.len() {
            let offset = pos as u64;
            match Self::scan_one(bytes, pos) {
                Ok((rec, next)) => {
                    if matches!(rec, WalRecord::Marker(_)) {
                        last_marker = Some(records.len());
                    }
                    records.push(rec);
                    pos = next;
                }
                Err(defect) => {
                    tail_defect = Some(match defect {
                        ScanDefect::Truncated => RecoveryError::Truncated { offset },
                        ScanDefect::Checksum => RecoveryError::ChecksumMismatch { offset },
                        ScanDefect::Decode(e) => e,
                    });
                    break;
                }
            }
        }
        let rolled_back_records = (records.len() - last_marker.map_or(0, |i| i + 1)) as u64;
        Ok(WalReplay {
            records,
            last_marker,
            intact_len: pos as u64,
            torn_bytes: (bytes.len() - pos) as u64,
            tail_defect,
            rolled_back_records,
        })
    }

    fn scan_one(bytes: &[u8], pos: usize) -> Result<(WalRecord, usize), ScanDefect> {
        let len_bytes = bytes.get(pos..pos + 4).ok_or(ScanDefect::Truncated)?;
        let mut lb = [0u8; 4];
        lb.copy_from_slice(len_bytes);
        let len = u32::from_le_bytes(lb);
        if len == 0 || len > MAX_RECORD_LEN {
            return Err(ScanDefect::Checksum);
        }
        let body_end = pos + 4 + len as usize;
        let body = bytes.get(pos + 4..body_end).ok_or(ScanDefect::Truncated)?;
        let sum_bytes = bytes
            .get(body_end..body_end + 8)
            .ok_or(ScanDefect::Truncated)?;
        let mut sb = [0u8; 8];
        sb.copy_from_slice(sum_bytes);
        if checksum(&[len_bytes, body]) != u64::from_le_bytes(sb) {
            return Err(ScanDefect::Checksum);
        }
        let kind = body[0];
        let rec =
            decode_record_payload(kind, &body[1..], pos as u64).map_err(ScanDefect::Decode)?;
        Ok((rec, body_end + 8))
    }

    /// Re-open an existing WAL for appending: replay it, physically
    /// truncate the defective tail (if any), and position the write
    /// cursor after the last intact record. Intact records past the last
    /// marker are *kept* — the re-run appends equivalent records and
    /// replay skips the duplicates idempotently.
    pub fn open_append(path: &Path) -> Result<(Wal, WalReplay), RecoveryError> {
        let replay = Self::replay(path)?;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(replay.intact_len)?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                appended: 0,
            },
            replay,
        ))
    }

    /// Append a delta record. Buffered by the OS — *not* durable until the
    /// next [`Wal::append_marker`] fsyncs the file.
    pub fn append_delta(&mut self, rec: &DeltaRecord) -> Result<(), RecoveryError> {
        let framed = frame_record(&WalRecord::Delta(rec.clone()));
        self.file.write_all(&framed)?;
        self.appended += 1;
        Ok(())
    }

    /// Simulate a crash tearing a delta append: write only the first
    /// `keep` bytes of the framed record. The result is a physically torn
    /// tail that [`Wal::replay`] must roll back and [`Wal::open_append`]
    /// must truncate.
    pub fn append_delta_torn(
        &mut self,
        rec: &DeltaRecord,
        keep: usize,
    ) -> Result<(), RecoveryError> {
        let framed = frame_record(&WalRecord::Delta(rec.clone()));
        let keep = keep.min(framed.len().saturating_sub(1)).max(1);
        self.file.write_all(&framed[..keep])?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Append an epoch marker and fsync: everything up to and including
    /// this marker is now durable.
    pub fn append_marker(&mut self, marker: &EpochMarker) -> Result<(), RecoveryError> {
        let framed = frame_record(&WalRecord::Marker(marker.clone()));
        self.file.write_all(&framed)?;
        self.file.sync_all()?;
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this handle since it was opened.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Current size of the WAL file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    /// The path this WAL writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

enum ScanDefect {
    Truncated,
    Checksum,
    Decode(RecoveryError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    fn scratch(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hc-wal-{}-{}.wal", std::process::id(), name));
        p
    }

    fn sample_delta(seed: u64) -> DeltaRecord {
        let g = gen::erdos_renyi(64, 256, seed);
        let base_fp = StructureFingerprint::of(&g);
        let row = (seed % 64) as u32;
        let delta = DeltaCsr::new(64, 64, vec![(row, 63, 1.5)], vec![]).expect("valid edit");
        let new_fp = StructureFingerprint::of(&delta.apply(&g).expect("applies"));
        DeltaRecord {
            epoch: seed,
            trace_index: seed * 3,
            base_fp,
            new_fp,
            delta,
        }
    }

    fn sample_marker(epoch: u64) -> EpochMarker {
        EpochMarker {
            epoch,
            counters: FrontCounters {
                submitted: 10 + epoch,
                admitted: 9,
                epochs: epoch + 1,
                ..Default::default()
            },
            cache: CacheStats {
                requests: 9,
                hits: 4,
                misses: 5,
                ..Default::default()
            },
            shard_residency: vec![
                vec![StructureFingerprint { lo: 1, hi: 2 }],
                vec![
                    StructureFingerprint { lo: 3, hi: 4 },
                    StructureFingerprint { lo: 5, hi: 6 },
                ],
            ],
            quarantine: vec![StructureFingerprint { lo: 7, hi: 8 }],
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = scratch("roundtrip");
        let mut wal = Wal::create(&path).expect("create");
        let d0 = sample_delta(1);
        let d1 = sample_delta(2);
        let m = sample_marker(0);
        wal.append_delta(&d0).expect("append");
        wal.append_delta(&d1).expect("append");
        wal.append_marker(&m).expect("marker");
        drop(wal);

        let replay = Wal::replay(&path).expect("replay");
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], WalRecord::Delta(d0.clone()));
        assert_eq!(replay.records[1], WalRecord::Delta(d1.clone()));
        assert_eq!(replay.records[2], WalRecord::Marker(m.clone()));
        assert_eq!(replay.last_marker, Some(2));
        assert_eq!(replay.last_marker().expect("marker").epoch, 0);
        assert!(replay.tail_defect.is_none());
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.rolled_back_records, 0);
        assert_eq!(replay.durable_deltas().count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_rolls_back_to_marker_and_truncates() {
        let path = scratch("torn");
        let mut wal = Wal::create(&path).expect("create");
        wal.append_delta(&sample_delta(1)).expect("append");
        wal.append_marker(&sample_marker(0)).expect("marker");
        // A post-marker delta whose append is torn mid-record.
        wal.append_delta_torn(&sample_delta(2), 9)
            .expect("torn append");
        drop(wal);

        let replay = Wal::replay(&path).expect("replay");
        assert_eq!(replay.records.len(), 2, "torn record dropped");
        assert_eq!(replay.last_marker, Some(1));
        assert!(replay.torn_bytes > 0);
        assert!(matches!(
            replay.tail_defect,
            Some(RecoveryError::Truncated { .. }) | Some(RecoveryError::ChecksumMismatch { .. })
        ));

        // Re-opening truncates the torn bytes and appends cleanly after.
        let (mut wal, replay) = Wal::open_append(&path).expect("open append");
        assert_eq!(replay.records.len(), 2);
        let d = sample_delta(3);
        wal.append_delta(&d).expect("append after truncate");
        wal.append_marker(&sample_marker(1)).expect("marker");
        drop(wal);
        let replay = Wal::replay(&path).expect("replay");
        assert_eq!(replay.records.len(), 4);
        assert!(replay.tail_defect.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unmarked_intact_records_roll_back_but_survive_reopen() {
        let path = scratch("unmarked");
        let mut wal = Wal::create(&path).expect("create");
        wal.append_marker(&sample_marker(0)).expect("marker");
        wal.append_delta(&sample_delta(5)).expect("append");
        drop(wal);
        let (_, replay) = Wal::open_append(&path).expect("open append");
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.rolled_back_records, 1);
        assert_eq!(replay.durable_deltas().count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_fails_checksum_not_panic() {
        let path = scratch("flip");
        let mut wal = Wal::create(&path).expect("create");
        wal.append_delta(&sample_delta(1)).expect("append");
        wal.append_marker(&sample_marker(0)).expect("marker");
        drop(wal);
        let clean = std::fs::read(&path).expect("read");
        // Flip one bit in every byte position; the scan must never panic
        // and must never return a record set longer than the clean one.
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x10;
            match Wal::replay_bytes(&bytes) {
                Ok(r) => assert!(r.records.len() <= 2),
                Err(
                    RecoveryError::BadMagic
                    | RecoveryError::UnsupportedVersion { .. }
                    | RecoveryError::Truncated { .. },
                ) => {}
                Err(e) => panic!("unexpected hard error for bit flip at {i}: {e}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_and_version_are_hard_errors() {
        assert!(matches!(
            Wal::replay_bytes(b"NOTAWAL!"),
            Err(RecoveryError::BadMagic)
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Wal::replay_bytes(&bytes),
            Err(RecoveryError::UnsupportedVersion { found: 99 })
        ));
        // Empty / short files are truncation, except when the magic
        // already disagrees.
        assert!(matches!(
            Wal::replay_bytes(&WAL_MAGIC),
            Err(RecoveryError::Truncated { .. })
        ));
    }

    #[test]
    fn checksum_distinguishes_part_boundaries() {
        // The fold must not treat ["ab","c"] and ["a","bc"] differently,
        // but must distinguish content and length.
        assert_eq!(checksum(&[b"ab", b"c"]), checksum(&[b"a", b"bc"]));
        assert_ne!(checksum(&[b"abc"]), checksum(&[b"abd"]));
        assert_ne!(checksum(&[b"abc"]), checksum(&[b"abc\0"]));
    }
}
