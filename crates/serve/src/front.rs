//! Concurrent multi-tenant serving front-end with structure-aware
//! dynamic batching.
//!
//! [`Front`] is the fleet-facing door in front of [`SharedPlanCache`]:
//! it ingests a multi-tenant request trace in fixed-size scheduling
//! epochs, sheds load at admission (typed [`HcError::Overloaded`], never
//! a panic or an unbounded buffer), groups the admitted requests of an
//! epoch into *cohorts* by [`StructureFingerprint`] so one
//! `Plan::prepare` + one workspace serves a whole cohort, and executes
//! cohorts across worker threads fed by the facade's bounded channel
//! ([`hc_parallel::sync::channel::Bounded`]).
//!
//! HC-SpMM's premise is that plan preparation (condense + classify +
//! LOA, ≈13× one SpMM) amortizes across executions. The cache already
//! amortizes it across *time* (repeat clients); cohorting amortizes it
//! across *tenants in flight*: ten concurrent requests on one structure
//! pay for one preparation even on a cold cache.
//!
//! ## Pipeline (per epoch)
//!
//! 1. **Admission** — arrival order, pure function of the trace: a full
//!    ingestion queue rejects with [`OverloadReason::QueueFull`], an
//!    exhausted per-tenant epoch quota with
//!    [`OverloadReason::TenantQuota`]. Hostile inputs (malformed graph,
//!    shape mismatch) are admitted but complete immediately as
//!    [`Outcome::Failed`] with no cache traffic.
//! 2. **Cohort formation** — admitted requests grouped by structure
//!    fingerprint in first-arrival order, chunked at
//!    [`FrontConfig::max_cohort`]; cohort ids are global and sequential.
//! 3. **Plan resolution** — one `get_or_prepare` per cohort, issued
//!    sequentially on the scheduler thread so cache counters and LRU
//!    order are identical at any worker count.
//! 4. **Execution** — cohorts stream through a bounded channel to
//!    `workers` threads; each cohort runs on one worker, members in
//!    arrival order through the shared plan, every member under its own
//!    trace-indexed fault stream. A fault mid-cohort degrades only the
//!    implicated member; poisoned plans are quarantined after the epoch
//!    barrier (scheduler thread, cohort order — deterministic counters).
//!
//! ## Determinism
//!
//! Same trace + same seed ⇒ identical outcomes, cohort assignments,
//! cache counters and simulated latencies at 1, 2 or 8 workers: the
//! only concurrent phase is cohort execution, and each member's result
//! is a pure function of (plan, graph, features, per-index fault
//! stream, device). The simulated latency model is worker-independent
//! by construction (below), so the whole [`FrontReport`] minus
//! `wall_ms` is bit-identical across worker counts.
//!
//! ## Latency model (simulated)
//!
//! Member *j* of a cohort waits for the cohort's plan (full preparation
//! on a miss — the price of structure-level batching) and for the
//! members ahead of it on the shared workspace:
//! `latency_j = prepare + Σ_{i≤j} (exec_i + wasted_i)`. Cross-cohort
//! queueing is *not* modeled as latency; queue pressure is modeled as
//! admission rejection instead, which keeps the metric independent of
//! the worker count. Preparation cost is *charged* once per cohort (to
//! its first member) for amortized-cost accounting, mirroring
//! [`BatchDriver`]'s miss accounting.
//!
//! ## Lock order
//!
//! `front-queue` / `front-results` → `plan-shard` → `quarantine-registry`.
//! In practice the front never holds its own locks across a cache call:
//! resolution and quarantine run lock-free on the scheduler thread, and
//! workers take `front-results` only *after* device execution returns
//! (the hazard-guard discipline). The model suite in
//! `crates/check/tests/front_model.rs` checks the combined lock graph
//! stays acyclic.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, DeltaCsr, DenseMatrix, StructureFingerprint};
use hc_core::{HcError, OverloadReason, PlanSpec, ResiliencePolicy};
use hc_parallel::sync::channel::Bounded;
use hc_parallel::sync::{thread, Mutex};

use crate::cache::CacheStats;
use crate::driver::{execute_planned, screen_request, Outcome, Request};
use crate::shared::{SharedPlanCache, SwapOutcome};

/// Opaque tenant identifier. Quotas and SLO accounting key on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One front-end arrival: a tenant and its serving request.
#[derive(Clone)]
pub struct FrontRequest {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The (graph, features) request itself.
    pub request: Request,
}

/// A structure mutation arriving on the control plane: an edge-churn
/// delta against a known base graph. Admitted outside the data-plane
/// queue and quotas; see [`Front::run_events`].
#[derive(Clone)]
pub struct Mutation {
    /// The graph the delta applies to (must match a structure the front
    /// has seen for the patch path to engage).
    pub base: Arc<Csr>,
    /// The edge insert/delete batch.
    pub delta: DeltaCsr,
}

/// One front-end trace event: a data-plane serving request or a
/// control-plane structure mutation.
#[derive(Clone)]
pub enum FrontEvent {
    /// Serve a tenant request (admission-controlled).
    Serve(FrontRequest),
    /// Apply a structure mutation (bypasses queue and quotas).
    Mutate(Mutation),
}

/// What the front did with one [`Mutation`], in trace order. The old
/// plan keeps serving — flagged stale — from the moment the mutation is
/// admitted until the patched plan is swapped in at the epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// Position in the event trace.
    pub trace_index: usize,
    /// Scheduling epoch the mutation fell into.
    pub epoch: usize,
    /// Fingerprint of the base (pre-mutation) structure.
    pub old_fp: StructureFingerprint,
    /// Fingerprint of the mutated structure, when the delta applied
    /// cleanly.
    pub new_fp: Option<StructureFingerprint>,
    /// Whether a resident plan was found and patched (vs. nothing
    /// resident, or the patch refused — LOA plan, delta/base mismatch).
    pub patched: bool,
    /// What the cache did with the patched plan, when one was built.
    pub swap: Option<SwapOutcome>,
    /// Simulated cost of the incremental re-plan (dirty windows only);
    /// 0 when no patch was built.
    pub patch_sim_ms: f64,
}

/// Front-end tuning knobs. All counts are clamped to ≥ 1 at run time.
#[derive(Debug, Clone, Copy)]
pub struct FrontConfig {
    /// Worker threads executing cohorts (0 ⇒ available parallelism).
    /// Outcomes and simulated metrics do not depend on this.
    pub workers: usize,
    /// Ingestion-queue bound: admitted requests per epoch, all tenants.
    pub queue_depth: usize,
    /// Admission quota per tenant per epoch.
    pub tenant_quota: usize,
    /// Arrivals grouped into one scheduling epoch.
    pub arrivals_per_epoch: usize,
    /// Largest cohort one worker executes in one dispatch.
    pub max_cohort: usize,
    /// Per-request SLO threshold on simulated latency, in ms.
    pub slo_sim_ms: f64,
    /// Retry/fallback/validation policy; its fault schedule is re-seeded
    /// per trace index, exactly like [`BatchDriver`].
    pub policy: ResiliencePolicy,
}

impl Default for FrontConfig {
    fn default() -> FrontConfig {
        FrontConfig {
            workers: 0,
            queue_depth: 64,
            tenant_quota: 16,
            arrivals_per_epoch: 32,
            max_cohort: 16,
            slo_sim_ms: 50.0,
            policy: ResiliencePolicy::default(),
        }
    }
}

/// One completed (or shed) front-end request, in trace order.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontResponse {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Position in the input trace.
    pub trace_index: usize,
    /// Scheduling epoch the arrival fell into.
    pub epoch: usize,
    /// How the request ended. Admission rejections surface as
    /// [`Outcome::Failed`]\([`HcError::Overloaded`]\).
    pub outcome: Outcome,
    /// Whether the cohort's plan came from the cache.
    pub hit: bool,
    /// Whether the cohort's plan was stale: a mutation superseded its
    /// structure and the request was served by the old plan while the
    /// patched replacement was still being built (stale-plan tolerance).
    pub stale: bool,
    /// Global cohort id, when the request reached execution.
    pub cohort: Option<u64>,
    /// Members in that cohort (≥ 1 when executed, 0 otherwise).
    pub cohort_size: usize,
    /// Simulated ms of this member's surviving execution.
    pub exec_sim_ms: f64,
    /// Simulated preparation ms *charged* to this member (full cost to a
    /// miss-cohort's first member, 0 to everyone else).
    pub prepare_sim_ms: f64,
    /// Simulated ms of discarded (faulted/invalid) attempts.
    pub wasted_sim_ms: f64,
    /// Simulated admission-to-completion latency (see module docs).
    pub latency_sim_ms: f64,
}

impl FrontResponse {
    /// The result matrix, when the request was served.
    pub fn z(&self) -> Option<&DenseMatrix> {
        self.outcome.z()
    }

    /// True when admission shed this request.
    pub fn is_rejected(&self) -> bool {
        matches!(self.outcome, Outcome::Failed(HcError::Overloaded { .. }))
    }
}

/// Deterministic front-end traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontCounters {
    /// Trace entries ingested.
    pub submitted: u64,
    /// Entries that passed admission.
    pub admitted: u64,
    /// Shed: ingestion queue full.
    pub rejected_queue: u64,
    /// Shed: tenant epoch quota exhausted.
    pub rejected_quota: u64,
    /// Admitted entries that ran to an outcome (== `admitted`; the front
    /// never drops work after admission).
    pub completed: u64,
    /// Clean primary-family successes.
    pub ok: u64,
    /// Served after retry/fallback.
    pub degraded: u64,
    /// Typed failures (hostile inputs, exhausted fallbacks).
    pub failed: u64,
    /// Cohorts dispatched.
    pub cohorts: u64,
    /// Admitted requests that shared a cohort with at least one other.
    pub cohorted_requests: u64,
    /// Scheduling epochs processed.
    pub epochs: u64,
    /// Cohorts whose plan was quarantined after a poisoning fault.
    pub quarantined_cohorts: u64,
    /// Control-plane mutations ingested (not counted in `submitted`).
    pub mutations: u64,
    /// Mutations resolved by patching the resident plan incrementally.
    pub patched_plans: u64,
    /// Requests served by a stale plan (mutation admitted, patched plan
    /// not yet swapped in).
    pub stale_served: u64,
}

impl FrontCounters {
    /// Total shed requests.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue + self.rejected_quota
    }

    /// Fraction of admitted requests that executed in a cohort of ≥ 2 —
    /// the structure-level batching yield.
    pub fn cohort_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.cohorted_requests as f64 / self.admitted as f64
        }
    }
}

/// Simulated-latency distribution over served requests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Served requests the distribution covers.
    pub served: u64,
    /// Median simulated latency, ms (nearest-rank).
    pub p50_sim_ms: f64,
    /// 99th-percentile simulated latency, ms (nearest-rank).
    pub p99_sim_ms: f64,
    /// Mean simulated latency, ms.
    pub mean_sim_ms: f64,
    /// Worst simulated latency, ms.
    pub max_sim_ms: f64,
}

/// Per-tenant admission and SLO accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Trace entries this tenant submitted.
    pub submitted: u64,
    /// Entries that passed admission.
    pub admitted: u64,
    /// Entries shed at admission (queue or quota).
    pub rejected: u64,
    /// Entries served (ok or degraded).
    pub served: u64,
    /// Entries that failed after admission.
    pub failed: u64,
    /// Served entries whose simulated latency exceeded the SLO.
    pub slo_violations: u64,
    /// 99th-percentile simulated latency over this tenant's served
    /// entries, ms.
    pub p99_sim_ms: f64,
}

/// Everything one [`Front::run_trace`] produced.
#[derive(Debug, Clone)]
pub struct FrontReport {
    /// One response per trace entry, in trace order.
    pub responses: Vec<FrontResponse>,
    /// Deterministic traffic counters.
    pub counters: FrontCounters,
    /// Latency distribution over served requests.
    pub latency: LatencyStats,
    /// Per-tenant accounting, ordered by tenant id.
    pub tenants: Vec<TenantStats>,
    /// One outcome per [`FrontEvent::Mutate`] in the trace, in trace
    /// order (empty for pure serving traces).
    pub mutations: Vec<MutationOutcome>,
    /// Plan-cache counters after the run.
    pub cache: CacheStats,
    /// Host wall-clock ms for the whole trace (the one
    /// non-deterministic field).
    pub wall_ms: f64,
}

impl FrontReport {
    /// Total simulated cost (prepare + exec + wasted) per admitted
    /// request — the amortization headline the benchmark gates.
    pub fn amortized_sim_ms(&self) -> f64 {
        if self.counters.admitted == 0 {
            return 0.0;
        }
        let total: f64 = self
            .responses
            .iter()
            .map(|r| r.prepare_sim_ms + r.exec_sim_ms + r.wasted_sim_ms)
            .sum();
        total / self.counters.admitted as f64
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A resolved cohort queued for execution: one plan, the member
/// requests in arrival order.
struct CohortJob<'t> {
    id: u64,
    hit: bool,
    stale: bool,
    plan: Arc<hc_core::Plan>,
    fp: StructureFingerprint,
    /// Full preparation cost when this cohort missed, else 0.
    prepare_ms: f64,
    members: Vec<(usize, &'t FrontRequest)>,
}

/// One member's execution record, produced on a worker.
struct MemberOut {
    trace_index: usize,
    outcome: Outcome,
    exec_sim_ms: f64,
    prepare_sim_ms: f64,
    wasted_sim_ms: f64,
    latency_sim_ms: f64,
}

/// One executed cohort, pushed to the results sink.
struct CohortDone {
    id: u64,
    hit: bool,
    stale: bool,
    fp: StructureFingerprint,
    size: usize,
    poisoned: bool,
    outs: Vec<MemberOut>,
}

/// Everything visible at one epoch barrier, handed to the
/// [`EpochSink`] after the epoch's mutations swapped and before the next
/// epoch starts.
pub(crate) struct EpochEnd<'a> {
    /// Global epoch index.
    pub epoch: usize,
    /// Cumulative counters at the barrier (pre-aggregation: `ok`,
    /// `degraded` and `failed` are computed from responses at report
    /// time, never here).
    pub counters: &'a FrontCounters,
    /// This epoch's response slots (`None` for mutation events).
    pub responses: &'a [Option<FrontResponse>],
    /// This epoch's mutation outcomes.
    pub mutations: &'a [MutationOutcome],
}

/// Epoch-boundary hooks the durability layer installs on
/// [`Front::run_events_from`]. The default no-op sink reduces it to the
/// plain in-memory run. Returning `Err` unwinds the run to its recovery
/// boundary — this is how injected crashes and WAL I/O errors stop the
/// front without panicking.
pub(crate) trait EpochSink {
    /// Why the run stopped early.
    type Halt;

    /// Called once per epoch after admission, before execution.
    fn mid_epoch(&mut self, epoch: usize) -> Result<(), Self::Halt>;

    /// Called for each structurally effective mutation at the barrier,
    /// *before* its swap commits — the write-ahead point.
    fn log_mutation(
        &mut self,
        epoch: usize,
        trace_index: usize,
        base_fp: StructureFingerprint,
        new_fp: StructureFingerprint,
        delta: &DeltaCsr,
    ) -> Result<(), Self::Halt>;

    /// Called at the epoch barrier after the mutation swaps: the commit
    /// point where the durability layer writes its fsync marker and
    /// delivers the epoch's responses.
    fn epoch_end(&mut self, end: EpochEnd<'_>) -> Result<(), Self::Halt>;
}

/// The sink behind plain [`Front::run_events`]: does nothing, cannot
/// halt.
struct NoopSink;

impl EpochSink for NoopSink {
    type Halt = std::convert::Infallible;

    fn mid_epoch(&mut self, _epoch: usize) -> Result<(), Self::Halt> {
        Ok(())
    }

    fn log_mutation(
        &mut self,
        _epoch: usize,
        _trace_index: usize,
        _base_fp: StructureFingerprint,
        _new_fp: StructureFingerprint,
        _delta: &DeltaCsr,
    ) -> Result<(), Self::Halt> {
        Ok(())
    }

    fn epoch_end(&mut self, _end: EpochEnd<'_>) -> Result<(), Self::Halt> {
        Ok(())
    }
}

/// The concurrent serving front-end. See the module docs for the
/// pipeline and its determinism/lock-order contracts.
pub struct Front {
    cache: Arc<SharedPlanCache>,
    cfg: FrontConfig,
}

impl Front {
    /// Front over a fresh [`SharedPlanCache`] with `cache_bytes` split
    /// across `shards` lanes for plans of `spec`.
    pub fn new(cache_bytes: u64, spec: PlanSpec, shards: usize, cfg: FrontConfig) -> Front {
        Front::with_cache(
            Arc::new(SharedPlanCache::new(cache_bytes, spec, shards)),
            cfg,
        )
    }

    /// Front over an existing (possibly shared) cache.
    pub fn with_cache(cache: Arc<SharedPlanCache>, cfg: FrontConfig) -> Front {
        Front { cache, cfg }
    }

    /// The underlying plan cache.
    pub fn cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    /// The configuration this front runs with.
    pub fn config(&self) -> &FrontConfig {
        &self.cfg
    }

    /// Serve a complete request trace: epochs of admission → cohorting →
    /// resolution → parallel execution. Never panics on request content;
    /// every trace entry comes back with a typed outcome, in trace
    /// order. Deterministic at any worker count (module docs).
    /// Equivalent to [`run_events`](Front::run_events) over a trace with
    /// no mutations.
    pub fn run_trace(&self, trace: &[FrontRequest], dev: &DeviceSpec) -> FrontReport {
        let events: Vec<FrontEvent> = trace.iter().cloned().map(FrontEvent::Serve).collect();
        self.run_events(&events, dev)
    }

    /// Serve a mixed trace of data-plane requests and control-plane
    /// structure mutations.
    ///
    /// Mutations bypass the ingestion queue and tenant quotas (they are
    /// operator actions, not tenant traffic). At admission the mutation
    /// marks the base structure's resident plan *stale*; the plan keeps
    /// serving — every such response is flagged
    /// [`stale`](FrontResponse::stale) and counted in
    /// [`stale_served`](FrontCounters::stale_served) — for the rest of
    /// the epoch. At the epoch barrier the scheduler thread patches the
    /// resident plan incrementally ([`hc_core::Plan::patch`], dirty
    /// windows only) and swaps it in first-insert-wins, with quarantine
    /// preserved across the swap; from the next epoch on, requests on the
    /// mutated structure hit the patched plan. Epoch batching means a
    /// mutation affects every request of its own epoch regardless of
    /// relative position within the epoch.
    pub fn run_events(&self, events: &[FrontEvent], dev: &DeviceSpec) -> FrontReport {
        match self.run_events_from(events, dev, 0, FrontCounters::default(), &mut NoopSink) {
            Ok(report) => report,
            Err(halt) => match halt {},
        }
    }

    /// [`run_events`](Front::run_events) with a resume point and
    /// durability hooks — the engine both the plain and the crash-safe
    /// fronts run on.
    ///
    /// `events` is always the *full* trace; epochs before `start_epoch`
    /// are skipped (their effects live in `counters_seed` and in the
    /// restored cache), so trace indices, epoch numbers and per-request
    /// fault streams are globally stable across a crash/recover/resume
    /// cycle. The returned report covers only the epochs this call ran;
    /// the durability layer merges it with what earlier attempts
    /// delivered.
    pub(crate) fn run_events_from<S: EpochSink>(
        &self,
        events: &[FrontEvent],
        dev: &DeviceSpec,
        start_epoch: usize,
        counters_seed: FrontCounters,
        sink: &mut S,
    ) -> Result<FrontReport, S::Halt> {
        let t0 = Instant::now();
        let cfg = self.cfg;
        let queue_depth = cfg.queue_depth.max(1);
        let tenant_quota = cfg.tenant_quota.max(1);
        let epoch_len = cfg.arrivals_per_epoch.max(1);
        let max_cohort = cfg.max_cohort.max(1);

        let mut counters = counters_seed;
        let mut slots: Vec<Option<FrontResponse>> = events.iter().map(|_| None).collect();
        let mut mutation_outs: Vec<MutationOutcome> = Vec::new();

        for (epoch, arrivals) in events.chunks(epoch_len).enumerate().skip(start_epoch) {
            counters.epochs += 1;
            let base = epoch * epoch_len;

            // --- Admission: arrival order, pure function of the trace.
            // Mutations are admitted unconditionally (control plane) and
            // immediately flag the superseded plan stale; patching waits
            // for the epoch barrier.
            let mut admitted: Vec<(usize, &FrontRequest)> = Vec::new();
            let mut epoch_mutations: Vec<(usize, &Mutation)> = Vec::new();
            let mut per_tenant: HashMap<TenantId, usize> = HashMap::new();
            for (off, ev) in arrivals.iter().enumerate() {
                let ti = base + off;
                let fr = match ev {
                    FrontEvent::Serve(fr) => fr,
                    FrontEvent::Mutate(m) => {
                        counters.mutations += 1;
                        self.cache.mark_stale(StructureFingerprint::of(&m.base));
                        epoch_mutations.push((ti, m));
                        continue;
                    }
                };
                counters.submitted += 1;
                let reason = if admitted.len() >= queue_depth {
                    Some(OverloadReason::QueueFull)
                } else if per_tenant.get(&fr.tenant).copied().unwrap_or(0) >= tenant_quota {
                    Some(OverloadReason::TenantQuota)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    match reason {
                        OverloadReason::QueueFull => counters.rejected_queue += 1,
                        OverloadReason::TenantQuota => counters.rejected_quota += 1,
                    }
                    slots[ti] = Some(FrontResponse {
                        tenant: fr.tenant,
                        trace_index: ti,
                        epoch,
                        outcome: Outcome::Failed(HcError::Overloaded { reason }),
                        hit: false,
                        stale: false,
                        cohort: None,
                        cohort_size: 0,
                        exec_sim_ms: 0.0,
                        prepare_sim_ms: 0.0,
                        wasted_sim_ms: 0.0,
                        latency_sim_ms: 0.0,
                    });
                    continue;
                }
                counters.admitted += 1;
                *per_tenant.entry(fr.tenant).or_insert(0) += 1;
                // Screen hostile inputs now: they complete immediately,
                // with no cohort and no cache traffic.
                if let Err(e) = screen_request(&fr.request) {
                    counters.completed += 1;
                    slots[ti] = Some(FrontResponse {
                        tenant: fr.tenant,
                        trace_index: ti,
                        epoch,
                        outcome: Outcome::Failed(e),
                        hit: false,
                        stale: false,
                        cohort: None,
                        cohort_size: 0,
                        exec_sim_ms: 0.0,
                        prepare_sim_ms: 0.0,
                        wasted_sim_ms: 0.0,
                        latency_sim_ms: 0.0,
                    });
                    continue;
                }
                admitted.push((ti, fr));
            }
            sink.mid_epoch(epoch)?;

            // --- Cohort formation: by fingerprint, first-arrival order.
            let mut group_of: HashMap<StructureFingerprint, usize> = HashMap::new();
            let mut groups: Vec<(StructureFingerprint, Vec<(usize, &FrontRequest)>)> = Vec::new();
            for (ti, fr) in admitted {
                let fp = StructureFingerprint::of(&fr.request.graph);
                let gi = *group_of.entry(fp).or_insert_with(|| {
                    groups.push((fp, Vec::new()));
                    groups.len() - 1
                });
                groups[gi].1.push((ti, fr));
            }

            // --- Plan resolution: sequential, scheduler thread only, so
            // cache counters and LRU order are worker-count-independent.
            let mut jobs: Vec<CohortJob<'_>> = Vec::new();
            for (fp, members) in groups {
                for chunk in members.chunks(max_cohort) {
                    let (_, first) = chunk[0];
                    let l = self.cache.lookup(&first.request.graph, dev);
                    let prepare_ms = if l.hit { 0.0 } else { l.plan.sim_prepare_ms() };
                    let id = counters.cohorts;
                    counters.cohorts += 1;
                    if chunk.len() >= 2 {
                        counters.cohorted_requests += chunk.len() as u64;
                    }
                    jobs.push(CohortJob {
                        id,
                        hit: l.hit,
                        stale: l.stale,
                        plan: l.plan,
                        fp,
                        prepare_ms,
                        members: chunk.to_vec(),
                    });
                }
            }

            // --- Execution: cohorts stream through a bounded channel to
            // the workers; the epoch barrier is the scope join.
            let primary = self.cache.spec().family;
            let n_workers = if cfg.workers == 0 {
                thread::available_parallelism()
            } else {
                cfg.workers
            }
            .min(jobs.len())
            .max(1);
            let done: Mutex<Vec<CohortDone>> = Mutex::named("front-results", Vec::new());
            if !jobs.is_empty() {
                let chan: Bounded<CohortJob<'_>> = Bounded::new(n_workers, "front-queue");
                thread::scope(|s| {
                    let (chan, done, dev) = (&chan, &done, &dev);
                    for _ in 0..n_workers {
                        s.spawn(move |_| {
                            while let Some(job) = chan.recv() {
                                let mut outs = Vec::with_capacity(job.members.len());
                                let mut poisoned = false;
                                // Members wait for the plan and for the
                                // members ahead of them on the shared
                                // workspace (module docs).
                                let mut queued = job.prepare_ms;
                                for (k, &(ti, fr)) in job.members.iter().enumerate() {
                                    let mut policy = cfg.policy;
                                    policy.faults = cfg.policy.faults.stream(ti as u64);
                                    let ex = execute_planned(
                                        &job.plan,
                                        &fr.request.graph,
                                        &fr.request.features,
                                        dev,
                                        &policy,
                                        primary,
                                    );
                                    poisoned |= ex.poisoned;
                                    queued += ex.exec_sim_ms + ex.wasted_sim_ms;
                                    outs.push(MemberOut {
                                        trace_index: ti,
                                        outcome: ex.outcome,
                                        exec_sim_ms: ex.exec_sim_ms,
                                        prepare_sim_ms: if k == 0 { job.prepare_ms } else { 0.0 },
                                        wasted_sim_ms: ex.wasted_sim_ms,
                                        latency_sim_ms: queued,
                                    });
                                }
                                // Results lock is taken only after device
                                // execution returned (hazard discipline).
                                done.lock().push(CohortDone {
                                    id: job.id,
                                    hit: job.hit,
                                    stale: job.stale,
                                    fp: job.fp,
                                    size: job.members.len(),
                                    poisoned,
                                    outs,
                                });
                            }
                        });
                    }
                    for job in jobs {
                        // Blocking bounded send = backpressure on the
                        // scheduler; never an unbounded buffer.
                        if chan.send(job).is_err() {
                            break;
                        }
                    }
                    chan.close();
                })
                .expect("front workers must not panic");
            }

            // --- Collection: cohort order, scheduler thread. Quarantine
            // poisoned plans here so registry counters are deterministic.
            let mut finished = done.into_inner();
            finished.sort_by_key(|c| c.id);
            for c in finished {
                if c.poisoned {
                    counters.quarantined_cohorts += 1;
                    self.cache.quarantine(c.fp);
                }
                for out in c.outs {
                    counters.completed += 1;
                    if c.stale {
                        counters.stale_served += 1;
                    }
                    let tenant = match &events[out.trace_index] {
                        FrontEvent::Serve(fr) => fr.tenant,
                        FrontEvent::Mutate(_) => unreachable!("mutations never join cohorts"),
                    };
                    slots[out.trace_index] = Some(FrontResponse {
                        tenant,
                        trace_index: out.trace_index,
                        epoch,
                        outcome: out.outcome,
                        hit: c.hit,
                        stale: c.stale,
                        cohort: Some(c.id),
                        cohort_size: c.size,
                        exec_sim_ms: out.exec_sim_ms,
                        prepare_sim_ms: out.prepare_sim_ms,
                        wasted_sim_ms: out.wasted_sim_ms,
                        latency_sim_ms: out.latency_sim_ms,
                    });
                }
            }

            // --- Mutation barrier: patch + swap on the scheduler thread,
            // in arrival order, after the epoch's cohorts drained — the
            // stale plan served this epoch; the patched plan serves the
            // next.
            let mut_start = mutation_outs.len();
            for (ti, m) in epoch_mutations {
                let old_fp = StructureFingerprint::of(&m.base);
                let mut out = MutationOutcome {
                    trace_index: ti,
                    epoch,
                    old_fp,
                    new_fp: None,
                    patched: false,
                    swap: None,
                    patch_sim_ms: 0.0,
                };
                let resident = self.cache.peek(old_fp);
                let patched = resident
                    .as_ref()
                    .and_then(|r| r.patch(&m.base, &m.delta, dev).ok());
                out.new_fp = match &patched {
                    Some(p) => Some(p.fingerprint),
                    // Unpatchable (LOA plan, delta disagrees with the
                    // base, or nothing resident): the post-mutation
                    // fingerprint comes from applying the delta directly.
                    None => m
                        .delta
                        .apply(&m.base)
                        .ok()
                        .map(|g| StructureFingerprint::of(&g)),
                };
                // Durability: the delta is on the log *before* the swap
                // publishes it, so recovery never sees a plan with no
                // provenance.
                if let Some(new_fp) = out.new_fp {
                    sink.log_mutation(epoch, ti, old_fp, new_fp, &m.delta)?;
                }
                match (resident.is_some(), patched) {
                    (true, Some(p)) => {
                        out.patched = true;
                        out.patch_sim_ms = p.sim_prepare_ms();
                        counters.patched_plans += 1;
                        out.swap = Some(self.cache.swap_patched(old_fp, Arc::new(p)));
                    }
                    (true, None) => {
                        // Retire the stale entry; the mutated structure
                        // prepares from scratch on its next request.
                        self.cache.remove(old_fp);
                    }
                    // Nothing resident to patch, so nothing stale is
                    // serving either.
                    (false, _) => {}
                }
                mutation_outs.push(out);
            }

            sink.epoch_end(EpochEnd {
                epoch,
                counters: &counters,
                responses: &slots[base..base + arrivals.len()],
                mutations: &mutation_outs[mut_start..],
            })?;
        }

        let resumed = (start_epoch * epoch_len).min(events.len());
        let responses: Vec<FrontResponse> = slots
            .into_iter()
            .zip(events)
            .skip(resumed)
            .filter_map(|(s, ev)| match ev {
                FrontEvent::Serve(_) => Some(s.expect("every serve event produces a response")),
                FrontEvent::Mutate(_) => None,
            })
            .collect();

        Ok(assemble_report(
            responses,
            counters,
            mutation_outs,
            self.cache.stats(),
            cfg.slo_sim_ms,
            t0.elapsed().as_secs_f64() * 1e3,
        ))
    }
}

/// Fold responses into the final [`FrontReport`]: latency percentiles,
/// per-tenant accounting, and the `ok`/`degraded`/`failed` counter tail
/// that is a pure function of the responses (epoch markers persist the
/// pre-aggregation counters; recovery re-derives these from the merged
/// response set).
pub(crate) fn assemble_report(
    responses: Vec<FrontResponse>,
    mut counters: FrontCounters,
    mutations: Vec<MutationOutcome>,
    cache: CacheStats,
    slo_sim_ms: f64,
    wall_ms: f64,
) -> FrontReport {
    let mut latencies: Vec<f64> = Vec::new();
    let mut tenants: std::collections::BTreeMap<TenantId, (TenantStats, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for r in &responses {
        let (ts, lats) = tenants.entry(r.tenant).or_insert_with(|| {
            (
                TenantStats {
                    tenant: r.tenant,
                    submitted: 0,
                    admitted: 0,
                    rejected: 0,
                    served: 0,
                    failed: 0,
                    slo_violations: 0,
                    p99_sim_ms: 0.0,
                },
                Vec::new(),
            )
        });
        ts.submitted += 1;
        if r.is_rejected() {
            ts.rejected += 1;
            continue;
        }
        ts.admitted += 1;
        match &r.outcome {
            Outcome::Ok(_) => counters.ok += 1,
            Outcome::Degraded { .. } => counters.degraded += 1,
            Outcome::Failed(_) => {
                counters.failed += 1;
                ts.failed += 1;
                continue;
            }
        }
        ts.served += 1;
        if r.latency_sim_ms > slo_sim_ms {
            ts.slo_violations += 1;
        }
        latencies.push(r.latency_sim_ms);
        lats.push(r.latency_sim_ms);
    }
    latencies.sort_by(f64::total_cmp);
    let latency = LatencyStats {
        served: latencies.len() as u64,
        p50_sim_ms: percentile(&latencies, 50.0),
        p99_sim_ms: percentile(&latencies, 99.0),
        mean_sim_ms: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        max_sim_ms: latencies.last().copied().unwrap_or(0.0),
    };
    let tenants: Vec<TenantStats> = tenants
        .into_values()
        .map(|(mut ts, mut lats)| {
            lats.sort_by(f64::total_cmp);
            ts.p99_sim_ms = percentile(&lats, 99.0);
            ts
        })
        .collect();

    FrontReport {
        responses,
        counters,
        latency,
        tenants,
        mutations,
        cache,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{gen, Csr};
    use std::sync::Arc;

    fn trace_of(mix: &[(u32, &Arc<Csr>)], dim: usize) -> Vec<FrontRequest> {
        mix.iter()
            .enumerate()
            .map(|(i, &(tenant, g))| FrontRequest {
                tenant: TenantId(tenant),
                request: Request {
                    graph: Arc::clone(g),
                    features: DenseMatrix::random_features(g.ncols, dim, i as u64),
                },
            })
            .collect()
    }

    fn small_graphs(n: usize) -> Vec<Arc<Csr>> {
        (0..n)
            .map(|i| Arc::new(gen::erdos_renyi(96, 420, 300 + i as u64)))
            .collect()
    }

    #[test]
    fn cohorts_amortize_one_prepare_across_members() {
        let dev = DeviceSpec::rtx3090();
        let gs = small_graphs(2);
        // One epoch: 3 requests on g0, 2 on g1, interleaved.
        let trace = trace_of(
            &[
                (0, &gs[0]),
                (1, &gs[1]),
                (2, &gs[0]),
                (3, &gs[1]),
                (4, &gs[0]),
            ],
            8,
        );
        let front = Front::new(
            u64::MAX / 16,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let rep = front.run_trace(&trace, &dev);
        let c = rep.counters;
        assert_eq!(c.submitted, 5);
        assert_eq!(c.admitted, 5);
        assert_eq!(c.rejected(), 0);
        assert_eq!(c.completed, 5);
        assert_eq!((c.ok, c.degraded, c.failed), (5, 0, 0));
        assert_eq!(c.cohorts, 2, "one cohort per structure");
        assert_eq!(c.cohorted_requests, 5);
        assert!((c.cohort_rate() - 1.0).abs() < 1e-12);
        // One preparation per structure, charged to the first member.
        assert_eq!(rep.cache.misses, 2);
        let charged: Vec<usize> = rep
            .responses
            .iter()
            .filter(|r| r.prepare_sim_ms > 0.0)
            .map(|r| r.trace_index)
            .collect();
        assert_eq!(charged, vec![0, 1]);
        // Members of one cohort share id, size and hit flag; outputs are
        // bit-identical to the reference pipeline.
        for (i, r) in rep.responses.iter().enumerate() {
            assert_eq!(r.cohort_size, if i % 2 == 0 { 3 } else { 2 });
            assert!(!r.hit, "cold cache");
            assert!(r.latency_sim_ms > 0.0);
            let req = &trace[i].request;
            let z = r.z().expect("faults off: everything serves");
            assert!(req.graph.spmm_reference(&req.features).max_abs_diff(z) < 0.05);
        }
    }

    #[test]
    fn admission_sheds_with_typed_overload_errors() {
        let dev = DeviceSpec::rtx3090();
        let gs = small_graphs(1);
        // 6 arrivals in one epoch: tenant 7 submits 4 (quota 2), queue
        // holds 3 total.
        let trace = trace_of(
            &[
                (7, &gs[0]),
                (7, &gs[0]),
                (7, &gs[0]),
                (8, &gs[0]),
                (7, &gs[0]),
                (8, &gs[0]),
            ],
            8,
        );
        let front = Front::new(
            u64::MAX / 16,
            PlanSpec::hybrid(),
            2,
            FrontConfig {
                workers: 1,
                queue_depth: 3,
                tenant_quota: 2,
                ..Default::default()
            },
        );
        let rep = front.run_trace(&trace, &dev);
        let kinds: Vec<Option<OverloadReason>> = rep
            .responses
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Failed(HcError::Overloaded { reason }) => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                None,
                None,
                Some(OverloadReason::TenantQuota),
                None,
                Some(OverloadReason::QueueFull),
                Some(OverloadReason::QueueFull),
            ]
        );
        let c = rep.counters;
        assert_eq!(c.submitted, 6);
        assert_eq!(c.admitted, 3);
        assert_eq!((c.rejected_queue, c.rejected_quota), (2, 1));
        assert_eq!(c.admitted + c.rejected(), c.submitted);
        assert_eq!(c.completed, c.admitted);
        // Per-tenant view agrees.
        assert_eq!(rep.tenants.len(), 2);
        let t7 = &rep.tenants[0];
        assert_eq!(
            (t7.tenant, t7.submitted, t7.admitted, t7.rejected),
            (TenantId(7), 4, 2, 2)
        );
        let t8 = &rep.tenants[1];
        assert_eq!(
            (t8.tenant, t8.submitted, t8.admitted, t8.rejected),
            (TenantId(8), 2, 1, 1)
        );
        // Rejections produced typed errors, not panics, and the error
        // formats mention the limit that fired.
        let msg = rep.responses[2]
            .outcome
            .error()
            .expect("rejected")
            .to_string();
        assert!(msg.contains("quota"), "{msg}");
    }

    #[test]
    fn hostile_inputs_fail_without_cache_traffic_or_cohorts() {
        let dev = DeviceSpec::rtx3090();
        let gs = small_graphs(1);
        let mut broken = (*gs[0]).clone();
        broken.col_idx[0] = 10_000;
        let broken = Arc::new(broken);
        let mut trace = trace_of(&[(0, &gs[0]), (1, &broken), (0, &gs[0])], 8);
        // Shape mismatch on the last entry.
        trace.push(FrontRequest {
            tenant: TenantId(2),
            request: Request {
                graph: Arc::clone(&gs[0]),
                features: DenseMatrix::random_features(17, 8, 9),
            },
        });
        let front = Front::new(u64::MAX / 16, PlanSpec::hybrid(), 2, FrontConfig::default());
        let rep = front.run_trace(&trace, &dev);
        assert!(matches!(
            rep.responses[1].outcome,
            Outcome::Failed(HcError::BadInput(_))
        ));
        assert!(matches!(
            rep.responses[3].outcome,
            Outcome::Failed(HcError::ShapeMismatch { .. })
        ));
        for bad in [&rep.responses[1], &rep.responses[3]] {
            assert_eq!(bad.cohort, None);
            assert_eq!(bad.cohort_size, 0);
        }
        // Only the two healthy requests touched the cache: one cohort.
        assert_eq!(rep.cache.requests, 1);
        assert_eq!(rep.counters.cohorts, 1);
        assert_eq!(rep.counters.failed, 2);
        assert_eq!(rep.counters.ok, 2);
    }

    #[test]
    fn reports_are_identical_at_1_2_and_8_workers() {
        let dev = DeviceSpec::rtx3090();
        let gs = small_graphs(3);
        let mix: Vec<(u32, &Arc<Csr>)> =
            (0..24u32).map(|i| (i % 4, &gs[(i as usize) % 3])).collect();
        let trace = trace_of(&mix, 8);
        let run = |workers: usize| {
            let front = Front::new(
                1 << 30,
                PlanSpec::hybrid(),
                4,
                FrontConfig {
                    workers,
                    arrivals_per_epoch: 8,
                    max_cohort: 4,
                    ..Default::default()
                },
            );
            front.run_trace(&trace, &dev)
        };
        let base = run(1);
        for workers in [2usize, 8] {
            let rep = run(workers);
            assert_eq!(rep.responses, base.responses, "workers={workers}");
            assert_eq!(rep.counters, base.counters);
            assert_eq!(rep.latency, base.latency);
            assert_eq!(rep.tenants, base.tenants);
            assert_eq!(
                (rep.cache.requests, rep.cache.hits, rep.cache.misses),
                (base.cache.requests, base.cache.hits, base.cache.misses),
            );
        }
        // Sanity on the shape of the shared run: epochs of 8 with cohort
        // cap 4 — per epoch g_i appears ≤3 times, so cohorts form and
        // later epochs hit the warm cache.
        assert_eq!(base.counters.epochs, 3);
        assert!(base.cache.hits > 0);
        assert!(base.latency.p99_sim_ms >= base.latency.p50_sim_ms);
        assert!(base.latency.max_sim_ms >= base.latency.p99_sim_ms);
    }

    #[test]
    fn mutation_serves_stale_then_swaps_the_patched_plan() {
        use graph_sparse::DeltaCsr;
        let dev = DeviceSpec::rtx3090();
        let g0 = Arc::new(gen::erdos_renyi(96, 420, 700));
        let (r, &c) = (0..g0.nrows)
            .find_map(|r| g0.row_cols(r).first().map(|col| (r, col)))
            .expect("graph has edges");
        let delta = DeltaCsr::new(g0.nrows, g0.ncols, vec![], vec![(r as u32, c)]).expect("valid");
        let g1 = Arc::new(delta.apply(&g0).expect("applies"));

        // Epochs of 4: [serve g0 ×4] [serve g0 ×2, mutate, serve g0]
        // [serve g1 ×4]. The mutation epoch serves g0 stale (epoch
        // batching: the whole epoch, not just arrivals after the event);
        // the next epoch hits the swapped patched plan.
        let req = |g: &Arc<Csr>, i: u64| {
            FrontEvent::Serve(FrontRequest {
                tenant: TenantId((i % 3) as u32),
                request: Request {
                    graph: Arc::clone(g),
                    features: DenseMatrix::random_features(g.ncols, 8, i),
                },
            })
        };
        let mut events: Vec<FrontEvent> = (0..6).map(|i| req(&g0, i)).collect();
        events.push(FrontEvent::Mutate(Mutation {
            base: Arc::clone(&g0),
            delta,
        }));
        events.push(req(&g0, 6));
        events.extend((7..11).map(|i| req(&g1, i)));

        let front = Front::new(
            u64::MAX / 16,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers: 2,
                arrivals_per_epoch: 4,
                ..Default::default()
            },
        );
        let rep = front.run_events(&events, &dev);

        let c = rep.counters;
        assert_eq!(c.submitted, 11, "mutations are not submissions");
        assert_eq!(c.admitted, 11);
        assert_eq!(c.completed, 11);
        assert_eq!((c.mutations, c.patched_plans), (1, 1));
        // Epoch 0 fresh, epoch 1 (3 requests, all stale), epoch 2 on g1.
        assert_eq!(c.stale_served, 3);
        let stale_idx: Vec<usize> = rep
            .responses
            .iter()
            .filter(|r| r.stale)
            .map(|r| r.trace_index)
            .collect();
        assert_eq!(stale_idx, vec![4, 5, 7]);

        // The mutation outcome records the incremental re-plan.
        assert_eq!(rep.mutations.len(), 1);
        let m = &rep.mutations[0];
        assert_eq!((m.trace_index, m.epoch), (6, 1));
        assert!(m.patched);
        assert_eq!(m.swap, Some(SwapOutcome::Swapped));
        assert_eq!(m.new_fp, Some(StructureFingerprint::of(&g1)));
        assert!(m.patch_sim_ms > 0.0);

        // Epoch 2: g1 requests hit the swapped plan (no fresh prepare)
        // and are bit-identical to an untouched front serving g1 cold.
        let g1_responses: Vec<&FrontResponse> = rep
            .responses
            .iter()
            .filter(|r| r.trace_index >= 8)
            .collect();
        assert!(g1_responses.iter().all(|r| r.hit && !r.stale));
        assert_eq!(rep.cache.swaps, 1);
        let control = Front::new(u64::MAX / 16, PlanSpec::hybrid(), 4, FrontConfig::default());
        let control_trace: Vec<FrontRequest> = (7..11)
            .map(|i| match req(&g1, i) {
                FrontEvent::Serve(fr) => fr,
                FrontEvent::Mutate(_) => unreachable!(),
            })
            .collect();
        let control_rep = control.run_trace(&control_trace, &dev);
        for (got, want) in g1_responses.iter().zip(&control_rep.responses) {
            assert_eq!(got.z(), want.z(), "patched plan must serve bit-identically");
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }
}
