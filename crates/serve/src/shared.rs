//! Concurrent sharded plan cache.
//!
//! [`SharedPlanCache`] is the first genuinely concurrent piece of the
//! serving tier: N fingerprint-addressed lanes (shards), each an
//! independently locked [`PlanCache`] with `total_budget / N` bytes, plus
//! one global quarantine registry shared by every lane. Callers take
//! `&self`, so the cache can sit behind an `Arc` and serve request
//! threads directly.
//!
//! ## Concurrency contract
//!
//! * **Shard addressing**: `fp.lo & (shards - 1)` (the shard count is
//!   rounded up to a power of two). The fingerprint's low lane is already
//!   avalanche-mixed, so masking it spreads structures evenly.
//! * **`Plan::prepare` runs outside every lock.** A lookup touches the
//!   shard (hit → done), releases it, prepares, then re-locks to admit.
//!   Two racers may both prepare the same plan; admission is
//!   first-insert-wins ([`PlanCache::admit`]), so both serve the *same*
//!   resident `Arc` and the loser's copy is dropped. Plans are pure
//!   functions of (structure, spec, device), so the copies are
//!   interchangeable bit-for-bit either way.
//! * **Lock order: shard → quarantine registry.** Both
//!   [`get_or_prepare`](SharedPlanCache::get_or_prepare) (miss path) and
//!   [`quarantine`](SharedPlanCache::quarantine) acquire the structure's
//!   shard first and the registry second; nothing acquires two shards at
//!   once. The model suite in `crates/check/tests/shared_cache_model.rs`
//!   explores the interleavings and the lock-order graph under
//!   `--cfg hc_check`; a seeded inversion of this order is caught by the
//!   cycle detector in `crates/check/tests/mutants.rs`.
//! * **Quarantine is permanent and race-free.** `quarantine(fp)` holds
//!   the shard lock while it registers the fingerprint and evicts the
//!   resident plan, and the admit path re-checks the registry under the
//!   same shard lock — so once `quarantine` returns, no plan for that
//!   fingerprint is resident and none can ever be admitted again.
//!   Requests racing *ahead* of the quarantine call may still be served
//!   the old plan; that is inherent (the fault had not been reported
//!   yet), identical to the single-threaded cache.
//!
//! Counter semantics are inherited per shard: within each shard
//! `requests == hits + misses` and `rejected <= misses`, and both
//! invariants survive aggregation ([`stats`](SharedPlanCache::stats)
//! sums the lanes). The hammer test in `tests/hammer.rs` pins them at
//! 1, 2 and 8 threads.

use std::collections::HashSet;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, StructureFingerprint};
use hc_core::{Plan, PlanSpec, WorkspaceStats};
use hc_parallel::sync::Mutex;

use crate::cache::{CacheStats, PlanCache};

/// One lookup's result: the plan, whether it came from the cache, and
/// whether the served plan is stale (superseded by a mutation whose
/// patched plan has not been swapped in yet).
#[derive(Debug, Clone)]
pub struct Lookup {
    /// The plan serving this request.
    pub plan: Arc<Plan>,
    /// Whether the plan came from the cache.
    pub hit: bool,
    /// Whether the served plan is flagged stale.
    pub stale: bool,
}

/// What [`SharedPlanCache::swap_patched`] did with the patched plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The patched plan (or a first-insert-wins racer's identical copy)
    /// is resident under the new fingerprint; the superseded entry is
    /// retired.
    Swapped,
    /// The old or new fingerprint was quarantined, so the patched plan —
    /// derived from a poisoned lineage — was barred and the new
    /// fingerprint quarantined as well.
    Quarantined,
}

/// Sharded, internally synchronized [`PlanCache`]: fingerprint-addressed
/// lanes under independent locks, one shared quarantine registry. See
/// the module docs for the concurrency contract.
pub struct SharedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
    mask: usize,
    quarantine: Mutex<HashSet<StructureFingerprint>>,
    spec: PlanSpec,
}

impl SharedPlanCache {
    /// Cache with `total_budget_bytes` split evenly across `shards` lanes
    /// (rounded up to a power of two, minimum 1) for plans of `spec`.
    pub fn new(total_budget_bytes: u64, spec: PlanSpec, shards: usize) -> SharedPlanCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = total_budget_bytes / n as u64;
        SharedPlanCache {
            shards: (0..n)
                .map(|_| Mutex::named("plan-shard", PlanCache::new(per_shard, spec)))
                .collect(),
            mask: n - 1,
            quarantine: Mutex::named("quarantine-registry", HashSet::new()),
            spec,
        }
    }

    fn shard_index(&self, fp: StructureFingerprint) -> usize {
        fp.lo as usize & self.mask
    }

    fn shard(&self, fp: StructureFingerprint) -> &Mutex<PlanCache> {
        &self.shards[self.shard_index(fp)]
    }

    /// Look up the plan for `a`'s structure, preparing (and, budget and
    /// quarantine permitting, retaining) it on a miss. Returns the plan
    /// and whether it was a hit. `Plan::prepare` runs with no lock held;
    /// concurrent racers on the same fingerprint converge on one resident
    /// plan (first insert wins).
    pub fn get_or_prepare(&self, a: &Csr, dev: &DeviceSpec) -> (Arc<Plan>, bool) {
        let l = self.lookup(a, dev);
        (l.plan, l.hit)
    }

    /// [`get_or_prepare`](SharedPlanCache::get_or_prepare) with the served
    /// plan's staleness exposed: `stale` is true when a mutation has
    /// superseded the plan's structure and the patched replacement has not
    /// been swapped in yet. Freshly prepared plans are never stale.
    pub fn lookup(&self, a: &Csr, dev: &DeviceSpec) -> Lookup {
        let fp = StructureFingerprint::of(a);
        if let Some((plan, stale)) = self.shard(fp).lock().touch(fp) {
            return Lookup {
                plan,
                hit: true,
                stale,
            };
        }
        // Miss counted; prepare outside the lock.
        let plan = Arc::new(Plan::prepare(a, self.spec, dev));
        let mut shard = self.shard(fp).lock();
        // Lock order: shard → quarantine registry (held only for the
        // membership probe).
        let barred = self.quarantine.lock().contains(&fp);
        if barred {
            shard.note_quarantine_miss();
            return Lookup {
                plan,
                hit: false,
                stale: false,
            };
        }
        Lookup {
            plan: shard.admit(fp, plan),
            hit: false,
            stale: false,
        }
    }

    /// The resident plan for `fp` without counting a request or bumping
    /// the LRU stamp — the patch path fetches the superseded plan as patch
    /// base this way.
    pub fn peek(&self, fp: StructureFingerprint) -> Option<Arc<Plan>> {
        self.shard(fp).lock().peek(fp)
    }

    /// Flag the resident plan for `fp` stale (a mutation superseded its
    /// structure). It keeps serving — every subsequent hit is flagged and
    /// counted in `stale_hits` — until [`swap_patched`]
    /// (SharedPlanCache::swap_patched) retires it. Returns whether a plan
    /// was resident to flag.
    pub fn mark_stale(&self, fp: StructureFingerprint) -> bool {
        self.shard(fp).lock().mark_stale(fp)
    }

    /// Retire the resident plan for `fp` without quarantining it (the
    /// unpatchable-mutation path: the structure changed but no patched
    /// plan could be derived, so the next request prepares from scratch).
    /// Returns whether a plan was resident.
    pub fn remove(&self, fp: StructureFingerprint) -> bool {
        self.shard(fp).lock().remove(fp)
    }

    /// Install a patched plan over the plan it supersedes: admit `plan`
    /// under its own fingerprint (first insert wins — a racing prepare for
    /// the same structure and this swap converge on one resident plan),
    /// then retire the superseded entry. Quarantine is preserved across
    /// the swap: if *either* fingerprint is quarantined the patched plan
    /// is barred from residency and its fingerprint is quarantined too —
    /// it derives from a poisoned plan.
    ///
    /// Locking: the new structure's shard, then the registry (the global
    /// shard → registry order), released before the old structure's shard
    /// is taken. No path ever holds two shards at once.
    pub fn swap_patched(&self, old_fp: StructureFingerprint, plan: Arc<Plan>) -> SwapOutcome {
        let new_fp = plan.fingerprint;
        let outcome = {
            let mut shard = self.shard(new_fp).lock();
            // Lock order: shard → quarantine registry.
            let mut reg = self.quarantine.lock();
            if reg.contains(&old_fp) || reg.contains(&new_fp) {
                reg.insert(new_fp);
                drop(reg);
                shard.quarantine(new_fp);
                SwapOutcome::Quarantined
            } else {
                drop(reg);
                shard.note_swap();
                shard.admit(new_fp, plan);
                SwapOutcome::Swapped
            }
        };
        // Retire the superseded entry (its shard locked on its own; an
        // empty delta patches in place, in which case there is nothing to
        // retire — the admit above already refreshed the entry).
        if old_fp != new_fp {
            self.shard(old_fp).lock().remove(old_fp);
        }
        outcome
    }

    /// Quarantine a structure after its plan produced a fault: register
    /// the fingerprint globally and evict the resident plan, both under
    /// the structure's shard lock, so no subsequent request can ever be
    /// served a plan cached under this fingerprint. Returns true if a
    /// plan was resident.
    pub fn quarantine(&self, fp: StructureFingerprint) -> bool {
        let mut shard = self.shard(fp).lock();
        // Lock order: shard → quarantine registry.
        self.quarantine.lock().insert(fp);
        shard.quarantine(fp)
    }

    /// Whether this structure is barred from residency.
    pub fn is_quarantined(&self, fp: StructureFingerprint) -> bool {
        self.quarantine.lock().contains(&fp)
    }

    /// Aggregate traffic counters over all shards. Each shard's counters
    /// are exact; the sum is a consistent snapshot only when no requests
    /// are in flight (shards are locked one at a time).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            total.requests += st.requests;
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.rejected += st.rejected;
            total.quarantined += st.quarantined;
            total.quarantine_misses += st.quarantine_misses;
            total.stale_hits += st.stale_hits;
            total.swaps += st.swaps;
        }
        total
    }

    /// Number of resident plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged across all shard budgets.
    pub fn bytes_used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes_used()).sum()
    }

    /// Number of lanes (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-lane byte budget.
    pub fn shard_budget(&self) -> u64 {
        // All shards share one budget; read it from the first.
        self.shards[0].lock().budget()
    }

    /// The spec every cached plan was prepared with.
    pub fn spec(&self) -> PlanSpec {
        self.spec
    }

    /// Collect the recoverable cache state — per-shard residency in LRU
    /// order plus the quarantine registry — as one consistent snapshot.
    ///
    /// Locking: every shard is acquired in ascending index order and
    /// *held* while the registry is read, then everything is released.
    /// Holding all shards freezes `swap_patched` and `quarantine` (both
    /// need a shard before they touch the registry), so the collected
    /// state can never be torn: no fingerprint is observed both resident
    /// and quarantined. The order is acyclic against the global
    /// shard → registry discipline — ascending shard acquisition cannot
    /// deadlock with paths that hold at most one shard, and no path holds
    /// the registry while waiting on a shard. Pinned by the snapshot
    /// model suite in `crates/check/tests/snapshot_model.rs`.
    pub fn collect_recoverable(
        &self,
    ) -> (Vec<Vec<StructureFingerprint>>, Vec<StructureFingerprint>) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let residency: Vec<Vec<StructureFingerprint>> =
            guards.iter().map(|g| g.resident_lru()).collect();
        let mut quarantine: Vec<StructureFingerprint> =
            self.quarantine.lock().iter().copied().collect();
        drop(guards);
        quarantine.sort_by_key(|fp| (fp.lo, fp.hi));
        (residency, quarantine)
    }

    /// The quarantine registry contents, sorted.
    pub fn quarantine_set(&self) -> Vec<StructureFingerprint> {
        let mut v: Vec<StructureFingerprint> = self.quarantine.lock().iter().copied().collect();
        v.sort_by_key(|fp| (fp.lo, fp.hi));
        v
    }

    /// Re-admit a deterministically rebuilt plan during recovery (no
    /// traffic counted, no eviction; see
    /// [`PlanCache::restore_resident`]). Routes to the plan's shard, so
    /// inserting each persisted shard list in its LRU order reproduces
    /// the pre-crash recency structure exactly.
    pub fn restore_resident(&self, plan: Arc<Plan>) {
        self.shard(plan.fingerprint).lock().restore_resident(plan);
    }

    /// Restore quarantine registrations during recovery: each fingerprint
    /// is registered globally and in its shard, without touching the
    /// `quarantined` counter (the persisted statistics already include
    /// it).
    pub fn restore_quarantine(&self, fps: &[StructureFingerprint]) {
        for &fp in fps {
            let mut shard = self.shard(fp).lock();
            // Lock order: shard → quarantine registry.
            self.quarantine.lock().insert(fp);
            shard.restore_quarantined(fp);
        }
    }

    /// Seed the aggregate statistics from persisted state (written into
    /// the first shard; [`stats`](SharedPlanCache::stats) sums the
    /// lanes).
    pub fn seed_stats(&self, stats: CacheStats) {
        self.shards[0].lock().seed_stats(stats);
    }

    /// Aggregate workspace counters over the resident plans.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        let mut total = WorkspaceStats::default();
        for s in &self.shards {
            total.add(&s.lock().workspace_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{gen, DenseMatrix};

    fn graphs(n: usize) -> Vec<Csr> {
        (0..n)
            .map(|i| gen::erdos_renyi(192, 800, i as u64 + 1))
            .collect()
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (ask, got) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8)] {
            let c = SharedPlanCache::new(1 << 20, PlanSpec::hybrid(), ask);
            assert_eq!(c.shard_count(), got);
            assert_eq!(c.shard_budget(), (1 << 20) / got as u64);
        }
    }

    #[test]
    fn single_threaded_traffic_matches_unsharded_semantics() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(4);
        let cache = SharedPlanCache::new(u64::MAX / 8, PlanSpec::hybrid(), 4);
        for round in 0..3 {
            for g in &gs {
                let (_, hit) = cache.get_or_prepare(g, &dev);
                assert_eq!(hit, round > 0);
            }
        }
        let s = cache.stats();
        assert_eq!(s.requests, 12);
        assert_eq!(s.hits + s.misses, s.requests);
        assert_eq!(s.misses, 4);
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
    }

    #[test]
    fn results_are_bit_identical_to_fresh_plans() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(2);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2);
        for g in &gs {
            let x = DenseMatrix::random_features(g.nrows, 24, 5);
            let fresh = Plan::prepare(g, PlanSpec::hybrid(), &dev)
                .execute(g, &x, &dev)
                .z;
            let (p1, _) = cache.get_or_prepare(g, &dev);
            let (p2, hit) = cache.get_or_prepare(g, &dev);
            assert!(hit);
            assert!(Arc::ptr_eq(&p1, &p2));
            assert_eq!(p1.execute(g, &x, &dev).z, fresh);
        }
    }

    #[test]
    fn swap_patched_replaces_the_stale_plan() {
        use graph_sparse::DeltaCsr;
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(192, 800, 41);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 4);
        let l = cache.lookup(&a, &dev);
        assert!(!l.hit && !l.stale);
        let old_fp = l.plan.fingerprint;

        // Mutation admitted: the old plan serves on, flagged stale.
        assert!(cache.mark_stale(old_fp));
        let l = cache.lookup(&a, &dev);
        assert!(l.hit && l.stale);
        assert_eq!(cache.stats().stale_hits, 1);

        // Patch off the resident plan and swap.
        let (r, &c) = (0..a.nrows)
            .find_map(|r| a.row_cols(r).first().map(|c| (r, c)))
            .expect("graph has edges");
        let delta = DeltaCsr::new(a.nrows, a.ncols, vec![], vec![(r as u32, c)]).expect("valid");
        let b = delta.apply(&a).expect("applies");
        let base = cache.peek(old_fp).expect("resident");
        let patched = Arc::new(base.patch(&a, &delta, &dev).expect("patches"));
        assert_eq!(
            cache.swap_patched(old_fp, Arc::clone(&patched)),
            SwapOutcome::Swapped
        );

        // New structure hits the swapped-in plan, not stale; the old
        // structure is retired (misses and re-prepares).
        let lb = cache.lookup(&b, &dev);
        assert!(lb.hit && !lb.stale);
        assert!(Arc::ptr_eq(&lb.plan, &patched));
        let la = cache.lookup(&a, &dev);
        assert!(!la.hit);
        let s = cache.stats();
        assert_eq!(s.swaps, 1);
        assert_eq!(s.stale_hits, 1);
    }

    #[test]
    fn swap_patched_preserves_quarantine_across_the_swap() {
        use graph_sparse::DeltaCsr;
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(192, 800, 43);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 4);
        let (plan, _) = cache.get_or_prepare(&a, &dev);
        let old_fp = plan.fingerprint;
        let (r, &c) = (0..a.nrows)
            .find_map(|r| a.row_cols(r).first().map(|c| (r, c)))
            .expect("graph has edges");
        let delta = DeltaCsr::new(a.nrows, a.ncols, vec![], vec![(r as u32, c)]).expect("valid");
        let b = delta.apply(&a).expect("applies");
        let patched = Arc::new(plan.patch(&a, &delta, &dev).expect("patches"));
        let new_fp = patched.fingerprint;

        // Fault reported between patch build and swap: the old lineage is
        // poisoned, so the patched plan must never gain residency.
        cache.quarantine(old_fp);
        assert_eq!(
            cache.swap_patched(old_fp, patched),
            SwapOutcome::Quarantined
        );
        assert!(cache.is_quarantined(new_fp));
        let lb = cache.lookup(&b, &dev);
        assert!(!lb.hit, "quarantined lineage must not be resident");
        let lb = cache.lookup(&b, &dev);
        assert!(!lb.hit, "and never regains residency");
        assert!(cache.stats().quarantine_misses >= 2);
        assert_eq!(cache.stats().swaps, 0);
    }

    #[test]
    fn quarantine_is_global_and_permanent() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(2);
        let fp = StructureFingerprint::of(&gs[0]);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 4);
        let (poisoned, _) = cache.get_or_prepare(&gs[0], &dev);
        assert!(cache.quarantine(fp), "resident plan must be evicted");
        assert!(cache.is_quarantined(fp));
        assert_eq!(cache.stats().quarantined, 1);
        for _ in 0..2 {
            let (plan, hit) = cache.get_or_prepare(&gs[0], &dev);
            assert!(!hit);
            assert!(!Arc::ptr_eq(&plan, &poisoned));
        }
        assert_eq!(cache.stats().quarantine_misses, 2);
        // Unrelated structures are unaffected.
        cache.get_or_prepare(&gs[1], &dev);
        let (_, hit) = cache.get_or_prepare(&gs[1], &dev);
        assert!(hit);
    }
}
