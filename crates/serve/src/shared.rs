//! Concurrent sharded plan cache.
//!
//! [`SharedPlanCache`] is the first genuinely concurrent piece of the
//! serving tier: N fingerprint-addressed lanes (shards), each an
//! independently locked [`PlanCache`] with `total_budget / N` bytes, plus
//! one global quarantine registry shared by every lane. Callers take
//! `&self`, so the cache can sit behind an `Arc` and serve request
//! threads directly.
//!
//! ## Concurrency contract
//!
//! * **Shard addressing**: `fp.lo & (shards - 1)` (the shard count is
//!   rounded up to a power of two). The fingerprint's low lane is already
//!   avalanche-mixed, so masking it spreads structures evenly.
//! * **`Plan::prepare` runs outside every lock.** A lookup touches the
//!   shard (hit → done), releases it, prepares, then re-locks to admit.
//!   Two racers may both prepare the same plan; admission is
//!   first-insert-wins ([`PlanCache::admit`]), so both serve the *same*
//!   resident `Arc` and the loser's copy is dropped. Plans are pure
//!   functions of (structure, spec, device), so the copies are
//!   interchangeable bit-for-bit either way.
//! * **Lock order: shard → quarantine registry.** Both
//!   [`get_or_prepare`](SharedPlanCache::get_or_prepare) (miss path) and
//!   [`quarantine`](SharedPlanCache::quarantine) acquire the structure's
//!   shard first and the registry second; nothing acquires two shards at
//!   once. The model suite in `crates/check/tests/shared_cache_model.rs`
//!   explores the interleavings and the lock-order graph under
//!   `--cfg hc_check`; a seeded inversion of this order is caught by the
//!   cycle detector in `crates/check/tests/mutants.rs`.
//! * **Quarantine is permanent and race-free.** `quarantine(fp)` holds
//!   the shard lock while it registers the fingerprint and evicts the
//!   resident plan, and the admit path re-checks the registry under the
//!   same shard lock — so once `quarantine` returns, no plan for that
//!   fingerprint is resident and none can ever be admitted again.
//!   Requests racing *ahead* of the quarantine call may still be served
//!   the old plan; that is inherent (the fault had not been reported
//!   yet), identical to the single-threaded cache.
//!
//! Counter semantics are inherited per shard: within each shard
//! `requests == hits + misses` and `rejected <= misses`, and both
//! invariants survive aggregation ([`stats`](SharedPlanCache::stats)
//! sums the lanes). The hammer test in `tests/hammer.rs` pins them at
//! 1, 2 and 8 threads.

use std::collections::HashSet;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, StructureFingerprint};
use hc_core::{Plan, PlanSpec, WorkspaceStats};
use hc_parallel::sync::Mutex;

use crate::cache::{CacheStats, PlanCache};

/// Sharded, internally synchronized [`PlanCache`]: fingerprint-addressed
/// lanes under independent locks, one shared quarantine registry. See
/// the module docs for the concurrency contract.
pub struct SharedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
    mask: usize,
    quarantine: Mutex<HashSet<StructureFingerprint>>,
    spec: PlanSpec,
}

impl SharedPlanCache {
    /// Cache with `total_budget_bytes` split evenly across `shards` lanes
    /// (rounded up to a power of two, minimum 1) for plans of `spec`.
    pub fn new(total_budget_bytes: u64, spec: PlanSpec, shards: usize) -> SharedPlanCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = total_budget_bytes / n as u64;
        SharedPlanCache {
            shards: (0..n)
                .map(|_| Mutex::named("plan-shard", PlanCache::new(per_shard, spec)))
                .collect(),
            mask: n - 1,
            quarantine: Mutex::named("quarantine-registry", HashSet::new()),
            spec,
        }
    }

    fn shard(&self, fp: StructureFingerprint) -> &Mutex<PlanCache> {
        &self.shards[fp.lo as usize & self.mask]
    }

    /// Look up the plan for `a`'s structure, preparing (and, budget and
    /// quarantine permitting, retaining) it on a miss. Returns the plan
    /// and whether it was a hit. `Plan::prepare` runs with no lock held;
    /// concurrent racers on the same fingerprint converge on one resident
    /// plan (first insert wins).
    pub fn get_or_prepare(&self, a: &Csr, dev: &DeviceSpec) -> (Arc<Plan>, bool) {
        let fp = StructureFingerprint::of(a);
        if let Some(plan) = self.shard(fp).lock().touch(fp) {
            return (plan, true);
        }
        // Miss counted; prepare outside the lock.
        let plan = Arc::new(Plan::prepare(a, self.spec, dev));
        let mut shard = self.shard(fp).lock();
        // Lock order: shard → quarantine registry (held only for the
        // membership probe).
        let barred = self.quarantine.lock().contains(&fp);
        if barred {
            shard.note_quarantine_miss();
            return (plan, false);
        }
        (shard.admit(fp, plan), false)
    }

    /// Quarantine a structure after its plan produced a fault: register
    /// the fingerprint globally and evict the resident plan, both under
    /// the structure's shard lock, so no subsequent request can ever be
    /// served a plan cached under this fingerprint. Returns true if a
    /// plan was resident.
    pub fn quarantine(&self, fp: StructureFingerprint) -> bool {
        let mut shard = self.shard(fp).lock();
        // Lock order: shard → quarantine registry.
        self.quarantine.lock().insert(fp);
        shard.quarantine(fp)
    }

    /// Whether this structure is barred from residency.
    pub fn is_quarantined(&self, fp: StructureFingerprint) -> bool {
        self.quarantine.lock().contains(&fp)
    }

    /// Aggregate traffic counters over all shards. Each shard's counters
    /// are exact; the sum is a consistent snapshot only when no requests
    /// are in flight (shards are locked one at a time).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            total.requests += st.requests;
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.rejected += st.rejected;
            total.quarantined += st.quarantined;
            total.quarantine_misses += st.quarantine_misses;
        }
        total
    }

    /// Number of resident plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged across all shard budgets.
    pub fn bytes_used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes_used()).sum()
    }

    /// Number of lanes (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-lane byte budget.
    pub fn shard_budget(&self) -> u64 {
        // All shards share one budget; read it from the first.
        self.shards[0].lock().budget()
    }

    /// The spec every cached plan was prepared with.
    pub fn spec(&self) -> PlanSpec {
        self.spec
    }

    /// Aggregate workspace counters over the resident plans.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        let mut total = WorkspaceStats::default();
        for s in &self.shards {
            total.add(&s.lock().workspace_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{gen, DenseMatrix};

    fn graphs(n: usize) -> Vec<Csr> {
        (0..n)
            .map(|i| gen::erdos_renyi(192, 800, i as u64 + 1))
            .collect()
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (ask, got) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8)] {
            let c = SharedPlanCache::new(1 << 20, PlanSpec::hybrid(), ask);
            assert_eq!(c.shard_count(), got);
            assert_eq!(c.shard_budget(), (1 << 20) / got as u64);
        }
    }

    #[test]
    fn single_threaded_traffic_matches_unsharded_semantics() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(4);
        let cache = SharedPlanCache::new(u64::MAX / 8, PlanSpec::hybrid(), 4);
        for round in 0..3 {
            for g in &gs {
                let (_, hit) = cache.get_or_prepare(g, &dev);
                assert_eq!(hit, round > 0);
            }
        }
        let s = cache.stats();
        assert_eq!(s.requests, 12);
        assert_eq!(s.hits + s.misses, s.requests);
        assert_eq!(s.misses, 4);
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
    }

    #[test]
    fn results_are_bit_identical_to_fresh_plans() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(2);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2);
        for g in &gs {
            let x = DenseMatrix::random_features(g.nrows, 24, 5);
            let fresh = Plan::prepare(g, PlanSpec::hybrid(), &dev)
                .execute(g, &x, &dev)
                .z;
            let (p1, _) = cache.get_or_prepare(g, &dev);
            let (p2, hit) = cache.get_or_prepare(g, &dev);
            assert!(hit);
            assert!(Arc::ptr_eq(&p1, &p2));
            assert_eq!(p1.execute(g, &x, &dev).z, fresh);
        }
    }

    #[test]
    fn quarantine_is_global_and_permanent() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs(2);
        let fp = StructureFingerprint::of(&gs[0]);
        let cache = SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 4);
        let (poisoned, _) = cache.get_or_prepare(&gs[0], &dev);
        assert!(cache.quarantine(fp), "resident plan must be evicted");
        assert!(cache.is_quarantined(fp));
        assert_eq!(cache.stats().quarantined, 1);
        for _ in 0..2 {
            let (plan, hit) = cache.get_or_prepare(&gs[0], &dev);
            assert!(!hit);
            assert!(!Arc::ptr_eq(&plan, &poisoned));
        }
        assert_eq!(cache.stats().quarantine_misses, 2);
        // Unrelated structures are unaffected.
        cache.get_or_prepare(&gs[1], &dev);
        let (_, hit) = cache.get_or_prepare(&gs[1], &dev);
        assert!(hit);
    }
}
