//! Batched request driver: a stream of (graph, features) requests served
//! through cached plans.
//!
//! Requests are processed strictly in order; the parallelism lives
//! *inside* each SpMM (the `hc-parallel` pool), not across requests. That
//! choice is what makes a batch run deterministic: the cache sees the same
//! lookup sequence — hence the same hits, evictions and counters — and
//! every kernel is bit-identical at any worker count, so the full response
//! stream is too.

use std::sync::Arc;
use std::time::Instant;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, DenseMatrix};
use hc_core::PlanSpec;

use crate::cache::{CacheStats, PlanCache};

/// One serving request: a graph and the dense feature matrix to multiply.
#[derive(Clone)]
pub struct Request {
    /// Adjacency (or propagation) matrix. `Arc` so request mixes can
    /// repeat a graph without cloning its arrays.
    pub graph: Arc<Csr>,
    /// Dense right-hand side (`graph.ncols` rows).
    pub features: DenseMatrix,
}

/// One serving response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The SpMM result.
    pub z: DenseMatrix,
    /// Whether the plan came from the cache.
    pub hit: bool,
    /// Simulated device milliseconds for the SpMM execution itself.
    pub exec_sim_ms: f64,
    /// Simulated milliseconds of plan preparation charged to this request
    /// (0 on a hit — that is the amortization).
    pub prepare_sim_ms: f64,
    /// Host wall-clock milliseconds spent serving the request.
    pub wall_ms: f64,
}

/// Serves request streams through a [`PlanCache`].
pub struct BatchDriver {
    /// The plan cache; exposed so callers can inspect counters or pre-warm.
    pub cache: PlanCache,
}

impl BatchDriver {
    /// Driver over a fresh cache with the given byte budget and plan spec.
    pub fn new(cache_bytes: u64, spec: PlanSpec) -> BatchDriver {
        BatchDriver {
            cache: PlanCache::new(cache_bytes, spec),
        }
    }

    /// Serve one request.
    pub fn serve(&mut self, req: &Request, dev: &DeviceSpec) -> Response {
        let t0 = Instant::now();
        let (plan, hit) = self.cache.get_or_prepare(&req.graph, dev);
        let r = plan.execute(&req.graph, &req.features, dev);
        Response {
            z: r.z,
            hit,
            exec_sim_ms: r.run.time_ms,
            prepare_sim_ms: if hit { 0.0 } else { plan.sim_prepare_ms() },
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Serve a batch in order. Outputs, hit flags and cache counters are
    /// independent of the worker-thread count; only `wall_ms` varies.
    pub fn run(&mut self, requests: &[Request], dev: &DeviceSpec) -> Vec<Response> {
        requests.iter().map(|r| self.serve(r, dev)).collect()
    }

    /// The cache's traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn batch_serves_in_order_with_expected_hits() {
        let dev = DeviceSpec::rtx3090();
        let gs: Vec<Arc<Csr>> = (0..2)
            .map(|s| Arc::new(gen::erdos_renyi(128, 600, s)))
            .collect();
        // a, b, a, a, b: first sight of each graph misses, the rest hit.
        let reqs: Vec<Request> = [0, 1, 0, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &g)| Request {
                graph: Arc::clone(&gs[g]),
                features: DenseMatrix::random_features(128, 8, i as u64),
            })
            .collect();
        let mut driver = BatchDriver::new(u64::MAX, PlanSpec::hybrid());
        let responses = driver.run(&reqs, &dev);
        let hits: Vec<bool> = responses.iter().map(|r| r.hit).collect();
        assert_eq!(hits, [false, false, true, true, true]);
        for (req, resp) in reqs.iter().zip(&responses) {
            assert!(
                req.graph
                    .spmm_reference(&req.features)
                    .max_abs_diff(&resp.z)
                    < 0.05
            );
            if resp.hit {
                assert_eq!(resp.prepare_sim_ms, 0.0);
            } else {
                assert!(resp.prepare_sim_ms > 0.0);
            }
            assert!(resp.exec_sim_ms > 0.0);
        }
        let s = driver.stats();
        assert_eq!((s.requests, s.hits, s.misses), (5, 3, 2));
    }
}
