//! Batched request driver: a stream of (graph, features) requests served
//! through cached plans with graceful degradation.
//!
//! Requests are processed strictly in order; the parallelism lives
//! *inside* each SpMM (the `hc-parallel` pool), not across requests. That
//! choice is what makes a batch run deterministic: the cache sees the same
//! lookup sequence — hence the same hits, evictions and counters — and
//! every kernel is bit-identical at any worker count, so the full response
//! stream is too.
//!
//! Every request is executed through [`hc_core::execute_resilient`], so a
//! device fault or hostile input degrades *that request* — retry, fallback
//! or a typed [`HcError`] — instead of unwinding the driver. Plans
//! implicated in a fault are quarantined in the [`PlanCache`] and never
//! re-served. Fault schedules are re-seeded per request index (see
//! [`gpu_sim::FaultConfig::stream`]), so one request's launch count cannot
//! shift another's fault draws and outcomes stay independent of batch
//! composition upstream of the failing request.

use std::sync::Arc;
use std::time::Instant;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, DenseMatrix};
use hc_core::{
    execute_resilient, FallbackStep, HcError, KernelFamily, Plan, PlanSpec, ResiliencePolicy,
};

use crate::cache::{CacheStats, PlanCache};

/// One serving request: a graph and the dense feature matrix to multiply.
#[derive(Clone)]
pub struct Request {
    /// Adjacency (or propagation) matrix. `Arc` so request mixes can
    /// repeat a graph without cloning its arrays.
    pub graph: Arc<Csr>,
    /// Dense right-hand side (`graph.ncols` rows).
    pub features: DenseMatrix,
}

/// How one request ended: the serving layer's graceful-degradation
/// contract. `Ok` and `Degraded` both carry a result that is bit-identical
/// to a fault-free execution of the family that produced it; `Failed`
/// carries a typed error. Nothing panics.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Served by the primary kernel family, first try.
    Ok(DenseMatrix),
    /// Served, but not cleanly: retries were needed and/or a fallback
    /// step produced the result.
    Degraded {
        /// The SpMM result (from the `fallback` step).
        z: DenseMatrix,
        /// The chain step that produced the surviving result.
        fallback: FallbackStep,
        /// Attempts beyond the first, across all steps.
        retries: u32,
    },
    /// The request could not be served.
    Failed(HcError),
}

impl Outcome {
    /// The result matrix, when one was produced.
    pub fn z(&self) -> Option<&DenseMatrix> {
        match self {
            Outcome::Ok(z) | Outcome::Degraded { z, .. } => Some(z),
            Outcome::Failed(_) => None,
        }
    }

    /// True for [`Outcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded { .. })
    }

    /// True for [`Outcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, Outcome::Failed(_))
    }

    /// The error, for [`Outcome::Failed`].
    pub fn error(&self) -> Option<&HcError> {
        match self {
            Outcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// One serving response.
#[derive(Debug, Clone)]
pub struct Response {
    /// How the request ended (and its result, when served).
    pub outcome: Outcome,
    /// Whether the plan came from the cache.
    pub hit: bool,
    /// Simulated device milliseconds of the surviving SpMM execution
    /// (0 when the request failed or the CPU reference answered).
    pub exec_sim_ms: f64,
    /// Simulated milliseconds of plan preparation charged to this request
    /// (0 on a hit — that is the amortization).
    pub prepare_sim_ms: f64,
    /// Simulated milliseconds of discarded (faulted or invalid) attempts —
    /// the recovery overhead this request paid.
    pub wasted_sim_ms: f64,
    /// Host wall-clock milliseconds spent serving the request.
    pub wall_ms: f64,
}

impl Response {
    /// The result matrix, when the request was served.
    pub fn z(&self) -> Option<&DenseMatrix> {
        self.outcome.z()
    }
}

/// Aggregate degradation accounting over a batch of [`Response`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchSummary {
    /// Responses summarized.
    pub requests: u64,
    /// Clean primary-family successes.
    pub ok: u64,
    /// Served after retry and/or fallback.
    pub degraded: u64,
    /// Typed failures.
    pub failed: u64,
    /// Total retries across all requests.
    pub retries: u64,
    /// Requests whose surviving result came from a non-primary step.
    pub fallbacks: u64,
    /// Total simulated milliseconds of discarded attempts.
    pub wasted_sim_ms: f64,
}

impl BatchSummary {
    /// Summarize `responses` served by a driver whose primary family is
    /// `primary` (i.e. its cache spec's family).
    pub fn of(responses: &[Response], primary: hc_core::KernelFamily) -> BatchSummary {
        let mut s = BatchSummary::default();
        for r in responses {
            s.requests += 1;
            s.wasted_sim_ms += r.wasted_sim_ms;
            match &r.outcome {
                Outcome::Ok(_) => s.ok += 1,
                Outcome::Degraded {
                    fallback, retries, ..
                } => {
                    s.degraded += 1;
                    s.retries += u64::from(*retries);
                    if *fallback != FallbackStep::Family(primary) {
                        s.fallbacks += 1;
                    }
                }
                Outcome::Failed(_) => s.failed += 1,
            }
        }
        s
    }

    /// Fraction of requests that were degraded (0 when none served).
    pub fn degraded_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.degraded as f64 / self.requests as f64
        }
    }
}

/// Screen a request before it can reach plan preparation (which indexes
/// the graph's arrays and would panic on a malformed one). Shared by the
/// in-order [`BatchDriver`] and the concurrent front-end.
pub(crate) fn screen_request(req: &Request) -> Result<(), HcError> {
    req.graph.validate()?;
    if req.features.rows != req.graph.ncols {
        return Err(HcError::ShapeMismatch {
            expected_rows: req.graph.ncols,
            got_rows: req.features.rows,
        });
    }
    Ok(())
}

/// What [`execute_planned`] observed: the outcome plus the simulated-time
/// and poisoning facts the caller needs to finish its accounting.
pub(crate) struct Executed {
    pub outcome: Outcome,
    /// Simulated ms of the surviving execution (0 on failure / CPU ref).
    pub exec_sim_ms: f64,
    /// Simulated ms of discarded (faulted or invalid) attempts.
    pub wasted_sim_ms: f64,
    /// Whether the plan was implicated in a fault and must be
    /// quarantined by the caller.
    pub poisoned: bool,
}

/// The post-lookup half of serving: run one request through an
/// already-resolved plan under `policy` (whose fault schedule the caller
/// has re-seeded) and classify the result against `primary`. Pure with
/// respect to the caller's caches — quarantine is the caller's job, via
/// [`Executed::poisoned`].
pub(crate) fn execute_planned(
    plan: &Plan,
    graph: &Csr,
    features: &DenseMatrix,
    dev: &DeviceSpec,
    policy: &ResiliencePolicy,
    primary: KernelFamily,
) -> Executed {
    let run = execute_resilient(plan, graph, features, dev, policy);
    let poisoned = run.poisoned;
    let wasted_sim_ms = run.wasted_sim_ms;
    let (outcome, exec_sim_ms) = match run.result {
        Ok(r) => {
            let exec = r.run.time_ms;
            if run.retries > 0 || run.executed != FallbackStep::Family(primary) {
                (
                    Outcome::Degraded {
                        z: r.z,
                        fallback: run.executed,
                        retries: run.retries,
                    },
                    exec,
                )
            } else {
                (Outcome::Ok(r.z), exec)
            }
        }
        Err(e) => (Outcome::Failed(e), 0.0),
    };
    Executed {
        outcome,
        exec_sim_ms,
        wasted_sim_ms,
        poisoned,
    }
}

/// Serves request streams through a [`PlanCache`] with per-request
/// graceful degradation.
pub struct BatchDriver {
    /// The plan cache; exposed so callers can inspect counters or pre-warm.
    pub cache: PlanCache,
    /// Retry/fallback/validation policy applied to every request. The
    /// policy's fault schedule is re-seeded per request index.
    pub policy: ResiliencePolicy,
    served: u64,
}

impl BatchDriver {
    /// Driver over a fresh cache with the given byte budget and plan spec,
    /// using the default (production) resilience policy: faults off,
    /// validation on, full fallback chain.
    pub fn new(cache_bytes: u64, spec: PlanSpec) -> BatchDriver {
        BatchDriver::with_policy(cache_bytes, spec, ResiliencePolicy::default())
    }

    /// Driver with an explicit resilience policy (chaos tests and the
    /// fault-recovery benchmark inject faults this way).
    pub fn with_policy(cache_bytes: u64, spec: PlanSpec, policy: ResiliencePolicy) -> BatchDriver {
        BatchDriver {
            cache: PlanCache::new(cache_bytes, spec),
            policy,
            served: 0,
        }
    }

    /// Serve one request. Never panics: hostile inputs and device faults
    /// come back as [`Outcome::Failed`] / [`Outcome::Degraded`].
    pub fn serve(&mut self, req: &Request, dev: &DeviceSpec) -> Response {
        let t0 = Instant::now();
        let index = self.served;
        self.served += 1;

        // Reject hostile inputs before they reach plan preparation.
        if let Err(e) = screen_request(req) {
            return Response {
                outcome: Outcome::Failed(e),
                hit: false,
                exec_sim_ms: 0.0,
                prepare_sim_ms: 0.0,
                wasted_sim_ms: 0.0,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            };
        }

        let (plan, hit) = self.cache.get_or_prepare(&req.graph, dev);
        let mut policy = self.policy;
        policy.faults = self.policy.faults.stream(index);
        let ex = execute_planned(
            &plan,
            &req.graph,
            &req.features,
            dev,
            &policy,
            self.cache.spec().family,
        );
        if ex.poisoned {
            self.cache.quarantine(plan.fingerprint);
        }
        Response {
            outcome: ex.outcome,
            hit,
            exec_sim_ms: ex.exec_sim_ms,
            prepare_sim_ms: if hit { 0.0 } else { plan.sim_prepare_ms() },
            wasted_sim_ms: ex.wasted_sim_ms,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Serve a batch in order. Outcomes, hit flags and cache counters are
    /// independent of the worker-thread count; only `wall_ms` varies.
    pub fn run(&mut self, requests: &[Request], dev: &DeviceSpec) -> Vec<Response> {
        requests.iter().map(|r| self.serve(r, dev)).collect()
    }

    /// The cache's traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Requests served so far (also the next request's fault-stream index).
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::FaultConfig;
    use graph_sparse::gen;
    use hc_core::KernelFamily;

    #[test]
    fn batch_serves_in_order_with_expected_hits() {
        let dev = DeviceSpec::rtx3090();
        let gs: Vec<Arc<Csr>> = (0..2)
            .map(|s| Arc::new(gen::erdos_renyi(128, 600, s)))
            .collect();
        // a, b, a, a, b: first sight of each graph misses, the rest hit.
        let reqs: Vec<Request> = [0, 1, 0, 0, 1]
            .iter()
            .enumerate()
            .map(|(i, &g)| Request {
                graph: Arc::clone(&gs[g]),
                features: DenseMatrix::random_features(128, 8, i as u64),
            })
            .collect();
        let mut driver = BatchDriver::new(u64::MAX, PlanSpec::hybrid());
        let responses = driver.run(&reqs, &dev);
        let hits: Vec<bool> = responses.iter().map(|r| r.hit).collect();
        assert_eq!(hits, [false, false, true, true, true]);
        for (req, resp) in reqs.iter().zip(&responses) {
            let z = resp.z().expect("faults are off: every request serves");
            assert!(matches!(resp.outcome, Outcome::Ok(_)));
            assert!(req.graph.spmm_reference(&req.features).max_abs_diff(z) < 0.05);
            if resp.hit {
                assert_eq!(resp.prepare_sim_ms, 0.0);
            } else {
                assert!(resp.prepare_sim_ms > 0.0);
            }
            assert!(resp.exec_sim_ms > 0.0);
            assert_eq!(resp.wasted_sim_ms, 0.0);
        }
        let s = driver.stats();
        assert_eq!((s.requests, s.hits, s.misses), (5, 3, 2));
        let sum = BatchSummary::of(&responses, KernelFamily::Hybrid);
        assert_eq!((sum.ok, sum.degraded, sum.failed), (5, 0, 0));
        assert_eq!(sum.degraded_rate(), 0.0);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_eviction() {
        // The same request stream served (a) through a warm cached plan
        // (workspace amortizing every request) and (b) through a
        // zero-budget cache (every request re-prepares a cold plan, so
        // nothing is ever reused) must produce identical responses.
        let dev = DeviceSpec::rtx3090();
        let g = Arc::new(gen::community(256, 1_500, 8, 0.9, 1));
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request {
                graph: Arc::clone(&g),
                features: DenseMatrix::random_features(256, 16, 50 + i),
            })
            .collect();
        let mut warm = BatchDriver::new(u64::MAX, PlanSpec::hybrid());
        let mut cold = BatchDriver::new(0, PlanSpec::hybrid());
        let rw = warm.run(&reqs, &dev);
        let rc = cold.run(&reqs, &dev);
        for (i, (w, c)) in rw.iter().zip(&rc).enumerate() {
            assert_eq!(
                w.z().expect("serves"),
                c.z().expect("serves"),
                "request {i}: warm plan != per-request cold plan"
            );
            assert_eq!(w.exec_sim_ms.to_bits(), c.exec_sim_ms.to_bits());
        }
        // The warm driver really did amortize: one resident plan, reused
        // scratchwork after the first request.
        let ws = warm.cache.workspace_stats();
        assert_eq!(ws.cost_builds, 1);
        assert_eq!(ws.cost_reuses, 5);
        // The cold driver retained nothing, so it reports no counters.
        assert_eq!(cold.cache.workspace_stats(), Default::default());

        // And a cache that evicts between repeats still serves the exact
        // same bytes after re-preparing the plan. Budget for the larger of
        // the two plans so either fits alone but never both (scattered
        // graphs carry bulkier tile metadata than community graphs).
        let other = Arc::new(gen::erdos_renyi(256, 700, 9));
        let bytes = hc_core::Plan::prepare(&g, PlanSpec::hybrid(), &dev)
            .approx_bytes()
            .max(hc_core::Plan::prepare(&other, PlanSpec::hybrid(), &dev).approx_bytes());
        let mut evicting = BatchDriver::new(bytes, PlanSpec::hybrid());
        let before = evicting.serve(&reqs[0], &dev);
        // Inserting a second structure evicts the first (budget of one).
        evicting.serve(
            &Request {
                graph: Arc::clone(&other),
                features: DenseMatrix::random_features(256, 16, 99),
            },
            &dev,
        );
        let after = evicting.serve(&reqs[0], &dev);
        assert!(!after.hit, "the plan must have been evicted");
        assert_eq!(before.z().unwrap(), after.z().unwrap());
        assert!(evicting.stats().evictions >= 1);
    }

    #[test]
    fn malformed_graph_and_bad_shape_fail_without_cache_traffic() {
        let dev = DeviceSpec::rtx3090();
        let good = Arc::new(gen::erdos_renyi(64, 300, 1));
        let mut broken = (*good).clone();
        broken.col_idx[0] = 10_000; // out of range
        let mut driver = BatchDriver::new(u64::MAX, PlanSpec::hybrid());

        let r = driver.serve(
            &Request {
                graph: Arc::new(broken),
                features: DenseMatrix::random_features(64, 8, 2),
            },
            &dev,
        );
        assert!(matches!(r.outcome, Outcome::Failed(HcError::BadInput(_))));

        let r = driver.serve(
            &Request {
                graph: Arc::clone(&good),
                features: DenseMatrix::random_features(63, 8, 3),
            },
            &dev,
        );
        assert!(matches!(
            r.outcome,
            Outcome::Failed(HcError::ShapeMismatch { .. })
        ));

        // Neither hostile request touched the cache.
        assert_eq!(driver.stats().requests, 0);

        // The driver still serves good traffic afterwards.
        let r = driver.serve(
            &Request {
                graph: Arc::clone(&good),
                features: DenseMatrix::random_features(64, 8, 4),
            },
            &dev,
        );
        assert!(matches!(r.outcome, Outcome::Ok(_)));
    }

    #[test]
    fn structural_faults_degrade_and_quarantine() {
        let dev = DeviceSpec::rtx3090();
        let g = Arc::new(gen::erdos_renyi(128, 600, 7));
        let fp = graph_sparse::StructureFingerprint::of(&g);
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request {
                graph: Arc::clone(&g),
                features: DenseMatrix::random_features(128, 8, i),
            })
            .collect();
        let policy = ResiliencePolicy {
            faults: FaultConfig {
                seed: 5,
                bit_flip: 0.0,
                shared_alloc_fail: 1.0,
                timeout: 0.0,
                launch_fail: 0.0,
            },
            ..Default::default()
        };
        let mut driver = BatchDriver::with_policy(u64::MAX, PlanSpec::hybrid(), policy);
        let responses = driver.run(&reqs, &dev);
        for (req, resp) in reqs.iter().zip(&responses) {
            // Every device launch faults, so every request degrades to the
            // CPU reference — and still serves, bit-exactly.
            match &resp.outcome {
                Outcome::Degraded { z, fallback, .. } => {
                    assert_eq!(*fallback, FallbackStep::CpuReference);
                    assert_eq!(*z, req.graph.spmm_reference(&req.features));
                }
                o => panic!("expected degraded, got {o:?}"),
            }
            assert!(resp.wasted_sim_ms > 0.0);
        }
        // The structure was quarantined on the first poisoned run and
        // never re-cached: one plain miss, then quarantine misses.
        assert!(driver.cache.is_quarantined(fp));
        let s = driver.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.quarantine_misses, 3);
        assert!(s.quarantined >= 1);
        let sum = BatchSummary::of(&responses, KernelFamily::Hybrid);
        assert_eq!(sum.degraded, 4);
        assert_eq!(sum.fallbacks, 4);
        assert!((sum.degraded_rate() - 1.0).abs() < 1e-12);
    }
}
