//! # hc-serve — structure-keyed plan cache and batched serving driver
//!
//! First piece of the serving architecture on the ROADMAP: HC-SpMM's
//! preprocessing is only worth its ≈13×-one-SpMM cost (Appendix F) when
//! amortized over many invocations, and a serving workload amortizes it by
//! *reusing plans across requests on the same graph*. This crate holds:
//!
//! * [`PlanCache`] — maps [`graph_sparse::StructureFingerprint`] →
//!   prepared [`hc_core::Plan`] under a byte budget with LRU eviction and
//!   hit/miss/eviction counters;
//! * [`BatchDriver`] — runs a stream of (graph, feature-matrix)
//!   [`Request`]s through cached plans on the `hc-parallel` pool, each
//!   request executed resiliently: retry, kernel-family fallback and typed
//!   per-request [`Outcome`]s instead of panics, with fault-implicated
//!   plans quarantined in the cache;
//! * [`SharedPlanCache`] — the concurrent, sharded version of the cache
//!   (fingerprint-addressed lanes + global quarantine registry) that many
//!   threads hit at once;
//! * [`Front`] — the multi-tenant serving front-end over the shared
//!   cache: epoch-batched admission with per-tenant quotas and a bounded
//!   queue (typed `Overloaded` shedding), structure-fingerprint *cohorts*
//!   that amortize one preparation across every in-flight request on the
//!   same graph, parallel cohort execution over worker threads, and
//!   p50/p99 + per-tenant SLO accounting.
//!
//! Requests are served in deterministic order at every layer: outputs,
//! cache counters, cohort assignments and simulated latencies are
//! bit-identical at 1, 2 or 64 workers.
//!
//! The durability layer makes the front crash-safe: [`wal`] logs every
//! applied delta (checksummed, fsync-marked at epoch barriers) before the
//! patched plan is swapped in, [`snapshot`] atomically persists the
//! recoverable state (graphs, cache residency order, quarantine — never
//! plans, which are deterministically rebuilt), and [`DurableFront`]
//! stitches them into a crash/recover/resume loop whose recovered output
//! is bit-identical to an uncrashed run.

#![warn(missing_docs)]

pub mod cache;
pub mod driver;
pub mod durable;
pub mod front;
pub mod shared;
pub mod snapshot;
pub mod wal;

pub use cache::{CacheStats, PlanCache};
pub use driver::{BatchDriver, BatchSummary, Outcome, Request, Response};
pub use durable::{
    run_to_completion, DurabilityConfig, DurableFront, RecoveryStats, RunAttempt, RunOutcome,
};
pub use front::{
    Front, FrontConfig, FrontCounters, FrontEvent, FrontReport, FrontRequest, FrontResponse,
    LatencyStats, Mutation, MutationOutcome, TenantId, TenantStats,
};
pub use shared::{Lookup, SharedPlanCache, SwapOutcome};
pub use snapshot::Snapshot;
pub use wal::{DeltaRecord, EpochMarker, RecoveryError, Wal, WalRecord, WalReplay};
