//! # hc-serve — structure-keyed plan cache and batched serving driver
//!
//! First piece of the serving architecture on the ROADMAP: HC-SpMM's
//! preprocessing is only worth its ≈13×-one-SpMM cost (Appendix F) when
//! amortized over many invocations, and a serving workload amortizes it by
//! *reusing plans across requests on the same graph*. This crate holds:
//!
//! * [`PlanCache`] — maps [`graph_sparse::StructureFingerprint`] →
//!   prepared [`hc_core::Plan`] under a byte budget with LRU eviction and
//!   hit/miss/eviction counters;
//! * [`BatchDriver`] — runs a stream of (graph, feature-matrix)
//!   [`Request`]s through cached plans on the `hc-parallel` pool, each
//!   request executed resiliently: retry, kernel-family fallback and typed
//!   per-request [`Outcome`]s instead of panics, with fault-implicated
//!   plans quarantined in the cache.
//!
//! Requests are served in order, each SpMM internally parallel, so a batch
//! run is deterministic and thread-count-independent: outputs and cache
//! counters are bit-identical at 1, 2 or 64 workers.

#![warn(missing_docs)]

pub mod cache;
pub mod driver;
pub mod shared;

pub use cache::{CacheStats, PlanCache};
pub use driver::{BatchDriver, BatchSummary, Outcome, Request, Response};
pub use shared::SharedPlanCache;
