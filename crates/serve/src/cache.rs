//! Byte-budgeted LRU cache of prepared execution plans.
//!
//! Keys are structure fingerprints, so any two graphs with identical CSR
//! structure — regardless of values — share one plan. The budget charges
//! each plan its [`Plan::approx_bytes`]; inserting past the budget evicts
//! least-recently-used plans until the newcomer fits. A plan larger than
//! the whole budget is prepared and returned but never retained (the
//! `rejected` counter), which also makes a zero-byte budget an exact model
//! of "caching disabled": every request misses, every result stays
//! correct.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, StructureFingerprint};
use hc_core::{Plan, PlanSpec, WorkspaceStats};

/// Cache traffic counters. `requests == hits + misses` always holds;
/// `rejected` counts the subset of misses whose plan was too large to
/// retain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served.
    pub requests: u64,
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to prepare a plan.
    pub misses: u64,
    /// Resident plans evicted to make room.
    pub evictions: u64,
    /// Prepared plans too large for the budget (returned, not retained).
    pub rejected: u64,
    /// Structures quarantined after producing a fault (see
    /// [`PlanCache::quarantine`]).
    pub quarantined: u64,
    /// Misses forced by quarantine: the structure was (or would have been)
    /// cached, but its plans are barred from residency.
    pub quarantine_misses: u64,
    /// Hits served from a plan flagged stale (a mutation superseded its
    /// structure and the patched replacement has not been swapped in yet).
    /// A subset of `hits`.
    pub stale_hits: u64,
    /// Patched plans swapped in over their predecessor (the old entry is
    /// removed, the new one admitted first-insert-wins).
    pub swaps: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache (0 when none served).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

struct Entry {
    plan: Arc<Plan>,
    bytes: u64,
    last_used: u64,
    /// A mutation superseded this plan's structure; it keeps serving
    /// (flagged) until the patched replacement is swapped in.
    stale: bool,
}

/// Structure-keyed LRU plan cache. One cache serves one [`PlanSpec`] —
/// fixing the spec at construction keeps every cached plan executable
/// interchangeably (a fingerprint hit could otherwise return a plan
/// prepared for a different kernel family).
pub struct PlanCache {
    budget: u64,
    spec: PlanSpec,
    entries: HashMap<StructureFingerprint, Entry>,
    quarantined: HashSet<StructureFingerprint>,
    bytes: u64,
    clock: u64,
    stats: CacheStats,
}

impl PlanCache {
    /// Cache with a byte budget for plans of `spec`.
    pub fn new(budget_bytes: u64, spec: PlanSpec) -> PlanCache {
        PlanCache {
            budget: budget_bytes,
            spec,
            entries: HashMap::new(),
            quarantined: HashSet::new(),
            bytes: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Look up the plan for `a`'s structure, preparing (and, budget
    /// permitting, retaining) it on a miss. Returns the plan and whether
    /// it was a hit. Deterministic: the same request sequence produces the
    /// same hits, evictions and counters at any thread count.
    pub fn get_or_prepare(&mut self, a: &Csr, dev: &DeviceSpec) -> (Arc<Plan>, bool) {
        let fp = StructureFingerprint::of(a);
        if let Some((plan, _stale)) = self.touch(fp) {
            return (plan, true);
        }
        let plan = Arc::new(Plan::prepare(a, self.spec, dev));
        if self.quarantined.contains(&fp) {
            // Quarantined structures are served by fresh ad-hoc plans but
            // never regain residency: a poisoned plan is gone for good,
            // and nothing under its fingerprint is ever re-served.
            self.note_quarantine_miss();
            return (plan, false);
        }
        (self.admit(fp, plan), false)
    }

    /// Record a lookup: on a hit, refresh the LRU stamp and return the
    /// resident plan plus its staleness flag; on a miss, count it and
    /// return `None` — the caller prepares the plan (outside any lock, in
    /// the sharded cache) and offers it back via
    /// [`admit`](PlanCache::admit). Split out of
    /// [`get_or_prepare`](PlanCache::get_or_prepare) so
    /// [`SharedPlanCache`](crate::SharedPlanCache) never holds a shard
    /// lock across `Plan::prepare`.
    pub fn touch(&mut self, fp: StructureFingerprint) -> Option<(Arc<Plan>, bool)> {
        self.stats.requests += 1;
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&fp) {
            e.last_used = self.clock;
            self.stats.hits += 1;
            if e.stale {
                self.stats.stale_hits += 1;
            }
            return Some((Arc::clone(&e.plan), e.stale));
        }
        self.stats.misses += 1;
        None
    }

    /// The resident plan for `fp`, without counting a request or bumping
    /// the LRU stamp. The patch path uses this to fetch the superseded
    /// plan as patch base without perturbing eviction order.
    pub fn peek(&self, fp: StructureFingerprint) -> Option<Arc<Plan>> {
        self.entries.get(&fp).map(|e| Arc::clone(&e.plan))
    }

    /// Flag the resident plan for `fp` stale: a mutation superseded its
    /// structure, and until the patched plan is swapped in it keeps
    /// serving with every hit counted in `stale_hits`. Returns whether a
    /// plan was resident to flag.
    pub fn mark_stale(&mut self, fp: StructureFingerprint) -> bool {
        if let Some(e) = self.entries.get_mut(&fp) {
            e.stale = true;
            true
        } else {
            false
        }
    }

    /// Remove the entry for `fp` (the swap path retires the superseded
    /// plan this way; not counted as an eviction). Returns whether a plan
    /// was resident.
    pub fn remove(&mut self, fp: StructureFingerprint) -> bool {
        if let Some(e) = self.entries.remove(&fp) {
            self.bytes -= e.bytes;
            true
        } else {
            false
        }
    }

    /// Count a patched-plan swap (the new structure's shard owns the
    /// counter).
    pub fn note_swap(&mut self) {
        self.stats.swaps += 1;
    }

    /// Count a miss that quarantine barred from admission (pairs with a
    /// [`touch`](PlanCache::touch) miss).
    pub fn note_quarantine_miss(&mut self) {
        self.stats.quarantine_misses += 1;
    }

    /// Offer a freshly prepared plan for residency after a
    /// [`touch`](PlanCache::touch) miss. First insert wins: if a
    /// concurrent racer already admitted a plan for `fp`, the resident
    /// plan is returned (so every caller serves the same `Arc`) and the
    /// offered one is dropped. Oversized plans are counted `rejected` and
    /// returned unretained; otherwise LRU entries are evicted until the
    /// newcomer fits.
    pub fn admit(&mut self, fp: StructureFingerprint, plan: Arc<Plan>) -> Arc<Plan> {
        if let Some(e) = self.entries.get_mut(&fp) {
            e.last_used = self.clock;
            return Arc::clone(&e.plan);
        }
        let bytes = plan.approx_bytes();
        if bytes > self.budget {
            self.stats.rejected += 1;
            return plan;
        }
        while self.bytes + bytes > self.budget {
            self.evict_lru();
        }
        self.bytes += bytes;
        self.entries.insert(
            fp,
            Entry {
                plan: Arc::clone(&plan),
                bytes,
                last_used: self.clock,
                stale: false,
            },
        );
        plan
    }

    /// Drop the least-recently-used entry. `last_used` stamps are unique
    /// (one clock tick per request), so the victim — and therefore the
    /// whole eviction sequence — is deterministic despite `HashMap`'s
    /// arbitrary iteration order.
    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(fp, _)| *fp)
            .expect("eviction requested on an empty cache");
        let e = self
            .entries
            .remove(&victim)
            .expect("victim key came from this map");
        self.bytes -= e.bytes;
        self.stats.evictions += 1;
    }

    /// Quarantine a structure after its plan produced a fault: evict the
    /// resident plan (if any) and permanently bar the fingerprint from
    /// residency. Subsequent requests for the structure are served by
    /// fresh ad-hoc plans that are never retained, so a poisoned plan can
    /// never be re-served. Returns true if a plan was resident.
    pub fn quarantine(&mut self, fp: StructureFingerprint) -> bool {
        let evicted = if let Some(e) = self.entries.remove(&fp) {
            self.bytes -= e.bytes;
            true
        } else {
            false
        };
        if self.quarantined.insert(fp) {
            self.stats.quarantined += 1;
        }
        evicted
    }

    /// Whether this structure is barred from residency.
    pub fn is_quarantined(&self, fp: StructureFingerprint) -> bool {
        self.quarantined.contains(&fp)
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes_used(&self) -> u64 {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The spec every cached plan was prepared with.
    pub fn spec(&self) -> PlanSpec {
        self.spec
    }

    /// Whether a plan for this structure is resident (no LRU touch).
    pub fn contains(&self, fp: StructureFingerprint) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Resident fingerprints in LRU order, oldest first. `last_used`
    /// stamps are unique, so the order is total and deterministic — it is
    /// the recoverable residency state the durability layer persists:
    /// re-admitting plans in this order reproduces every future eviction
    /// decision.
    pub fn resident_lru(&self) -> Vec<StructureFingerprint> {
        let mut v: Vec<(u64, StructureFingerprint)> = self
            .entries
            .iter()
            .map(|(fp, e)| (e.last_used, *fp))
            .collect();
        v.sort_by_key(|&(t, _)| t);
        v.into_iter().map(|(_, fp)| fp).collect()
    }

    /// Re-admit a deterministically rebuilt plan during recovery. The
    /// entry takes the next clock stamp — callers insert in persisted
    /// [`resident_lru`](PlanCache::resident_lru) order, which restores
    /// the relative recency that eviction decisions depend on — and is
    /// charged against the budget, but **no traffic is counted and
    /// nothing is evicted**: restoring state is not traffic, and a
    /// restored set was resident together before the crash so it fits by
    /// construction (an oversized plan is dropped, as `admit` would).
    pub fn restore_resident(&mut self, plan: Arc<Plan>) {
        let fp = plan.fingerprint;
        if self.entries.contains_key(&fp) || self.quarantined.contains(&fp) {
            return;
        }
        let bytes = plan.approx_bytes();
        if self.bytes + bytes > self.budget {
            return;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.insert(
            fp,
            Entry {
                plan,
                bytes,
                last_used: self.clock,
                stale: false,
            },
        );
    }

    /// Restore a quarantine registration during recovery, without
    /// counting it in `quarantined` (the persisted statistics already
    /// include it; they are re-seeded wholesale via
    /// [`seed_stats`](PlanCache::seed_stats)).
    pub fn restore_quarantined(&mut self, fp: StructureFingerprint) {
        self.quarantined.insert(fp);
    }

    /// Seed the cumulative statistics from persisted state. Recovery
    /// seeds one shard with the pre-crash totals so the aggregate picks
    /// up exactly where the crashed process left off.
    pub fn seed_stats(&mut self, stats: CacheStats) {
        self.stats = stats;
    }

    /// Aggregate workspace counters over the resident plans — how much
    /// per-request allocation the cached population is amortizing away.
    /// Evicted and rejected plans take their counters with them, so this
    /// reflects the plans still serving.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        let mut s = WorkspaceStats::default();
        for e in self.entries.values() {
            s.add(&e.plan.workspace_stats());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::{gen, DenseMatrix};

    fn graphs() -> Vec<Csr> {
        vec![
            gen::erdos_renyi(256, 1_000, 1),
            gen::erdos_renyi(256, 1_000, 2),
            gen::erdos_renyi(256, 1_000, 3),
        ]
    }

    #[test]
    fn zero_budget_disables_caching_but_stays_correct() {
        let dev = DeviceSpec::rtx3090();
        let mut cache = PlanCache::new(0, PlanSpec::hybrid());
        let a = &graphs()[0];
        let x = DenseMatrix::random_features(a.nrows, 16, 9);
        let mut outputs = Vec::new();
        for _ in 0..3 {
            let (plan, hit) = cache.get_or_prepare(a, &dev);
            assert!(!hit);
            outputs.push(plan.execute(a, &x, &dev).z);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
        let s = cache.stats();
        assert_eq!((s.requests, s.hits, s.misses), (3, 0, 3));
        assert_eq!(s.rejected, 3);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn single_plan_larger_than_budget_is_returned_not_retained() {
        let dev = DeviceSpec::rtx3090();
        let a = &graphs()[0];
        // Find the plan's real size, then set the budget just below it.
        let bytes = Plan::prepare(a, PlanSpec::hybrid(), &dev).approx_bytes();
        let mut cache = PlanCache::new(bytes - 1, PlanSpec::hybrid());
        let (plan, hit) = cache.get_or_prepare(a, &dev);
        assert!(!hit);
        assert_eq!(plan.approx_bytes(), bytes);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().evictions, 0);
        // At exactly the budget it fits.
        let mut cache = PlanCache::new(bytes, PlanSpec::hybrid());
        cache.get_or_prepare(a, &dev);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes_used(), bytes);
    }

    #[test]
    fn lru_evicts_in_exact_recency_order() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs();
        let fps: Vec<StructureFingerprint> = gs.iter().map(StructureFingerprint::of).collect();
        let bytes: Vec<u64> = gs
            .iter()
            .map(|g| Plan::prepare(g, PlanSpec::hybrid(), &dev).approx_bytes())
            .collect();
        // Budget holds exactly two of the three plans.
        let budget = bytes[0] + bytes[1].max(bytes[2]);
        let mut cache = PlanCache::new(budget, PlanSpec::hybrid());

        cache.get_or_prepare(&gs[0], &dev); // [0]
        cache.get_or_prepare(&gs[1], &dev); // [0, 1]
        cache.get_or_prepare(&gs[0], &dev); // touch 0 → 1 is now LRU
        cache.get_or_prepare(&gs[2], &dev); // evicts 1, not 0
        assert!(cache.contains(fps[0]));
        assert!(!cache.contains(fps[1]));
        assert!(cache.contains(fps[2]));
        assert_eq!(cache.stats().evictions, 1);

        // Re-inserting 1 now evicts 0 (LRU after the touch order above).
        cache.get_or_prepare(&gs[1], &dev);
        assert!(!cache.contains(fps[0]));
        assert!(cache.contains(fps[1]));
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn counters_account_for_every_request() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs();
        let mut cache = PlanCache::new(u64::MAX, PlanSpec::hybrid());
        for round in 0..4 {
            for g in &gs {
                let (_, hit) = cache.get_or_prepare(g, &dev);
                assert_eq!(hit, round > 0);
            }
        }
        let s = cache.stats();
        assert_eq!(s.requests, 12);
        assert_eq!(s.hits + s.misses, s.requests);
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 9);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.rejected, 0);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quarantined_structure_is_never_re_served_from_cache() {
        let dev = DeviceSpec::rtx3090();
        let gs = graphs();
        let fp = StructureFingerprint::of(&gs[0]);
        let mut cache = PlanCache::new(u64::MAX, PlanSpec::hybrid());
        let (poisoned, _) = cache.get_or_prepare(&gs[0], &dev);
        assert!(cache.contains(fp));

        assert!(cache.quarantine(fp), "resident plan must be evicted");
        assert!(!cache.contains(fp));
        assert!(cache.is_quarantined(fp));
        assert_eq!(cache.stats().quarantined, 1);
        // Idempotent: re-quarantining doesn't double-count.
        assert!(!cache.quarantine(fp));
        assert_eq!(cache.stats().quarantined, 1);

        // The structure still gets served — by fresh plans, never the
        // poisoned Arc, never retained.
        for _ in 0..3 {
            let (plan, hit) = cache.get_or_prepare(&gs[0], &dev);
            assert!(!hit);
            assert!(!Arc::ptr_eq(&plan, &poisoned));
            assert!(!cache.contains(fp));
        }
        assert_eq!(cache.stats().quarantine_misses, 3);
        assert_eq!(cache.bytes_used(), 0);

        // Other structures are unaffected.
        let (_, hit) = cache.get_or_prepare(&gs[1], &dev);
        assert!(!hit);
        let (_, hit) = cache.get_or_prepare(&gs[1], &dev);
        assert!(hit);
    }

    #[test]
    fn stale_flag_sticks_until_removal_and_counts_hits() {
        let dev = DeviceSpec::rtx3090();
        let a = &graphs()[0];
        let fp = StructureFingerprint::of(a);
        let mut cache = PlanCache::new(u64::MAX, PlanSpec::hybrid());
        assert!(!cache.mark_stale(fp), "nothing resident yet");
        let (plan, _) = cache.get_or_prepare(a, &dev);
        assert!(cache.peek(fp).is_some());
        assert!(cache.mark_stale(fp));
        // Stale plans keep serving, flagged and counted.
        let (p, stale) = cache.touch(fp).expect("resident");
        assert!(stale);
        assert!(Arc::ptr_eq(&p, &plan));
        assert_eq!(cache.stats().stale_hits, 1);
        // peek does not count anything.
        assert!(cache.peek(fp).is_some());
        let s = cache.stats();
        assert_eq!((s.requests, s.hits), (2, 1));
        // Removal retires the entry without an eviction tick.
        assert!(cache.remove(fp));
        assert!(!cache.remove(fp));
        assert_eq!(cache.bytes_used(), 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reweighted_graph_hits_the_same_plan() {
        let dev = DeviceSpec::rtx3090();
        let a = graphs().remove(0);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v *= 7.0;
        }
        let mut cache = PlanCache::new(u64::MAX, PlanSpec::hybrid());
        let (pa, hit_a) = cache.get_or_prepare(&a, &dev);
        let (pb, hit_b) = cache.get_or_prepare(&b, &dev);
        assert!(!hit_a);
        assert!(hit_b, "same structure must hit regardless of values");
        assert!(Arc::ptr_eq(&pa, &pb));
    }
}
