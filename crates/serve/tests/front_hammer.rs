//! Multithreaded hammer for the serving front-end: a multi-tenant
//! request mix pushed through [`Front::run_trace`] at 1, 2 and 8
//! workers, asserting
//!
//! * the counter invariants hold exactly — `submitted == admitted +
//!   rejected`, `completed == admitted`, `completed == ok + degraded +
//!   failed`, every executed request sits in a cohort of size ≥ 1, and
//!   no tenant ever exceeds its per-epoch admission quota;
//! * every served output is bit-exact against a cold single-stream
//!   execution (fresh plan per request, no cache, no cohorts);
//! * the full deterministic report is identical at every worker count.

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DenseMatrix};
use hc_core::{Plan, PlanSpec};
use hc_serve::{Front, FrontConfig, FrontReport, FrontRequest, Outcome, Request, TenantId};

const EPOCH: usize = 12;
const QUOTA: usize = 4;
const QUEUE: usize = 10;

fn mix() -> Vec<FrontRequest> {
    let gs: Vec<Arc<Csr>> = (0..4)
        .map(|i| Arc::new(gen::erdos_renyi(144, 640, 500 + i as u64)))
        .collect();
    // 48 arrivals: 5 tenants with skewed submission rates over 4
    // structures, arranged so tenant 0 overruns its quota and the tail
    // of each epoch overruns the queue.
    (0..48usize)
        .map(|i| {
            let tenant = TenantId([0, 0, 1, 0, 2, 3, 0, 4][i % 8]);
            let g = &gs[(i * 7) % 4];
            FrontRequest {
                tenant,
                request: Request {
                    graph: Arc::clone(g),
                    features: DenseMatrix::random_features(g.ncols, 16, i as u64),
                },
            }
        })
        .collect()
}

fn run(workers: usize, trace: &[FrontRequest], dev: &DeviceSpec) -> FrontReport {
    let front = Front::new(
        1 << 30,
        PlanSpec::hybrid(),
        4,
        FrontConfig {
            workers,
            queue_depth: QUEUE,
            tenant_quota: QUOTA,
            arrivals_per_epoch: EPOCH,
            max_cohort: 3,
            ..Default::default()
        },
    );
    front.run_trace(trace, dev)
}

#[test]
fn counters_quota_and_bit_exactness_at_1_2_and_8_workers() {
    let dev = DeviceSpec::rtx3090();
    let trace = mix();

    // Cold single-stream control: a fresh plan per request, no sharing
    // of any kind. Every served front output must match it bit-for-bit.
    let cold: Vec<DenseMatrix> = trace
        .iter()
        .map(|fr| {
            Plan::prepare(&fr.request.graph, PlanSpec::hybrid(), &dev)
                .execute(&fr.request.graph, &fr.request.features, &dev)
                .z
        })
        .collect();

    let base = run(1, &trace, &dev);
    for workers in [1usize, 2, 8] {
        let rep = run(workers, &trace, &dev);
        let c = rep.counters;

        // Counter invariants, exact.
        assert_eq!(c.submitted, trace.len() as u64, "workers={workers}");
        assert_eq!(c.submitted, c.admitted + c.rejected());
        assert_eq!(c.completed, c.admitted, "nothing dropped after admission");
        assert_eq!(c.completed, c.ok + c.degraded + c.failed);
        assert_eq!(c.failed, 0, "clean mix: no failures");
        assert!(c.rejected_quota > 0, "tenant 0 must overrun its quota");
        assert!(c.rejected_queue > 0, "epoch tails must overrun the queue");
        assert!(c.cohorts >= 4, "at least one cohort per structure");
        assert!(
            c.cohort_rate() >= 0.5,
            "structure-heavy mix must cohort: {}",
            c.cohort_rate()
        );

        // Per-epoch, per-tenant quota is never exceeded; executed
        // requests always carry a cohort of size >= 1.
        let mut admitted_per: HashMap<(usize, TenantId), usize> = HashMap::new();
        for r in &rep.responses {
            if r.is_rejected() {
                assert_eq!(r.cohort, None);
                continue;
            }
            *admitted_per.entry((r.epoch, r.tenant)).or_insert(0) += 1;
            if !matches!(r.outcome, Outcome::Failed(_)) {
                assert!(r.cohort.is_some(), "served requests belong to a cohort");
                assert!(r.cohort_size >= 1);
                assert!(r.cohort_size <= 3, "cohort cap respected");
            }
        }
        for ((epoch, tenant), n) in &admitted_per {
            assert!(
                *n <= QUOTA,
                "tenant {tenant} admitted {n} > quota {QUOTA} in epoch {epoch}"
            );
        }
        let per_epoch_total: HashMap<usize, usize> =
            admitted_per
                .iter()
                .fold(HashMap::new(), |mut acc, ((e, _), n)| {
                    *acc.entry(*e).or_insert(0) += n;
                    acc
                });
        for (epoch, n) in per_epoch_total {
            assert!(n <= QUEUE, "epoch {epoch} admitted {n} > queue {QUEUE}");
        }

        // Bit-exactness of every served output vs. the cold control.
        let mut served = 0usize;
        for (r, control) in rep.responses.iter().zip(&cold) {
            if let Some(z) = r.z() {
                assert_eq!(
                    z, control,
                    "trace index {}: cohorted output != cold single-stream",
                    r.trace_index
                );
                served += 1;
            }
        }
        assert_eq!(served as u64, c.ok + c.degraded);

        // The whole deterministic report matches the 1-worker baseline.
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
        assert_eq!(rep.latency, base.latency);
        assert_eq!(rep.tenants, base.tenants);
        assert_eq!(
            (rep.cache.requests, rep.cache.hits, rep.cache.misses),
            (base.cache.requests, base.cache.hits, base.cache.misses)
        );
    }
}

#[test]
fn faulty_mix_degrades_only_implicated_members_and_stays_deterministic() {
    use gpu_sim::FaultConfig;
    let dev = DeviceSpec::rtx3090();
    let trace = mix();
    let run_faulty = |workers: usize| {
        let front = Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers,
                queue_depth: QUEUE,
                tenant_quota: QUOTA,
                arrivals_per_epoch: EPOCH,
                max_cohort: 3,
                policy: hc_core::ResiliencePolicy {
                    faults: FaultConfig::uniform(11, 0.35),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        front.run_trace(&trace, &dev)
    };
    let base = run_faulty(1);
    assert!(
        base.counters.degraded > 0,
        "fault rate 0.35 must degrade something"
    );
    // Faults hit individual members, not whole cohorts: some cohort with
    // a degraded member also served a clean `Ok` member.
    let mixed_cohort = base.responses.iter().any(|r| {
        r.outcome.is_degraded()
            && base.responses.iter().any(|o| {
                o.cohort == r.cohort
                    && o.trace_index != r.trace_index
                    && matches!(o.outcome, Outcome::Ok(_))
            })
    });
    assert!(
        mixed_cohort,
        "a fault mid-cohort must degrade only the implicated members"
    );
    // Every served member (clean or degraded) still returns a result,
    // and rejected counters are unchanged by faults.
    assert_eq!(
        base.counters.admitted + base.counters.rejected(),
        base.counters.submitted
    );
    for workers in [2usize, 8] {
        let rep = run_faulty(workers);
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
    }
}
