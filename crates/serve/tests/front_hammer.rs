//! Multithreaded hammer for the serving front-end: a multi-tenant
//! request mix pushed through [`Front::run_trace`] at 1, 2 and 8
//! workers, asserting
//!
//! * the counter invariants hold exactly — `submitted == admitted +
//!   rejected`, `completed == admitted`, `completed == ok + degraded +
//!   failed`, every executed request sits in a cohort of size ≥ 1, and
//!   no tenant ever exceeds its per-epoch admission quota;
//! * every served output is bit-exact against a cold single-stream
//!   execution (fresh plan per request, no cache, no cohorts);
//! * the full deterministic report is identical at every worker count.

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DenseMatrix};
use hc_core::{Plan, PlanSpec};
use hc_serve::{
    Front, FrontConfig, FrontEvent, FrontReport, FrontRequest, Outcome, Request, TenantId,
};

const EPOCH: usize = 12;
const QUOTA: usize = 4;
const QUEUE: usize = 10;

fn mix() -> Vec<FrontRequest> {
    let gs: Vec<Arc<Csr>> = (0..4)
        .map(|i| Arc::new(gen::erdos_renyi(144, 640, 500 + i as u64)))
        .collect();
    // 48 arrivals: 5 tenants with skewed submission rates over 4
    // structures, arranged so tenant 0 overruns its quota and the tail
    // of each epoch overruns the queue.
    (0..48usize)
        .map(|i| {
            let tenant = TenantId([0, 0, 1, 0, 2, 3, 0, 4][i % 8]);
            let g = &gs[(i * 7) % 4];
            FrontRequest {
                tenant,
                request: Request {
                    graph: Arc::clone(g),
                    features: DenseMatrix::random_features(g.ncols, 16, i as u64),
                },
            }
        })
        .collect()
}

fn run(workers: usize, trace: &[FrontRequest], dev: &DeviceSpec) -> FrontReport {
    let front = Front::new(
        1 << 30,
        PlanSpec::hybrid(),
        4,
        FrontConfig {
            workers,
            queue_depth: QUEUE,
            tenant_quota: QUOTA,
            arrivals_per_epoch: EPOCH,
            max_cohort: 3,
            ..Default::default()
        },
    );
    front.run_trace(trace, dev)
}

#[test]
fn counters_quota_and_bit_exactness_at_1_2_and_8_workers() {
    let dev = DeviceSpec::rtx3090();
    let trace = mix();

    // Cold single-stream control: a fresh plan per request, no sharing
    // of any kind. Every served front output must match it bit-for-bit.
    let cold: Vec<DenseMatrix> = trace
        .iter()
        .map(|fr| {
            Plan::prepare(&fr.request.graph, PlanSpec::hybrid(), &dev)
                .execute(&fr.request.graph, &fr.request.features, &dev)
                .z
        })
        .collect();

    let base = run(1, &trace, &dev);
    for workers in [1usize, 2, 8] {
        let rep = run(workers, &trace, &dev);
        let c = rep.counters;

        // Counter invariants, exact.
        assert_eq!(c.submitted, trace.len() as u64, "workers={workers}");
        assert_eq!(c.submitted, c.admitted + c.rejected());
        assert_eq!(c.completed, c.admitted, "nothing dropped after admission");
        assert_eq!(c.completed, c.ok + c.degraded + c.failed);
        assert_eq!(c.failed, 0, "clean mix: no failures");
        assert!(c.rejected_quota > 0, "tenant 0 must overrun its quota");
        assert!(c.rejected_queue > 0, "epoch tails must overrun the queue");
        assert!(c.cohorts >= 4, "at least one cohort per structure");
        assert!(
            c.cohort_rate() >= 0.5,
            "structure-heavy mix must cohort: {}",
            c.cohort_rate()
        );

        // Per-epoch, per-tenant quota is never exceeded; executed
        // requests always carry a cohort of size >= 1.
        let mut admitted_per: HashMap<(usize, TenantId), usize> = HashMap::new();
        for r in &rep.responses {
            if r.is_rejected() {
                assert_eq!(r.cohort, None);
                continue;
            }
            *admitted_per.entry((r.epoch, r.tenant)).or_insert(0) += 1;
            if !matches!(r.outcome, Outcome::Failed(_)) {
                assert!(r.cohort.is_some(), "served requests belong to a cohort");
                assert!(r.cohort_size >= 1);
                assert!(r.cohort_size <= 3, "cohort cap respected");
            }
        }
        for ((epoch, tenant), n) in &admitted_per {
            assert!(
                *n <= QUOTA,
                "tenant {tenant} admitted {n} > quota {QUOTA} in epoch {epoch}"
            );
        }
        let per_epoch_total: HashMap<usize, usize> =
            admitted_per
                .iter()
                .fold(HashMap::new(), |mut acc, ((e, _), n)| {
                    *acc.entry(*e).or_insert(0) += n;
                    acc
                });
        for (epoch, n) in per_epoch_total {
            assert!(n <= QUEUE, "epoch {epoch} admitted {n} > queue {QUEUE}");
        }

        // Bit-exactness of every served output vs. the cold control.
        let mut served = 0usize;
        for (r, control) in rep.responses.iter().zip(&cold) {
            if let Some(z) = r.z() {
                assert_eq!(
                    z, control,
                    "trace index {}: cohorted output != cold single-stream",
                    r.trace_index
                );
                served += 1;
            }
        }
        assert_eq!(served as u64, c.ok + c.degraded);

        // The whole deterministic report matches the 1-worker baseline.
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
        assert_eq!(rep.latency, base.latency);
        assert_eq!(rep.tenants, base.tenants);
        assert_eq!(
            (rep.cache.requests, rep.cache.hits, rep.cache.misses),
            (base.cache.requests, base.cache.hits, base.cache.misses)
        );
    }
}

#[test]
fn faulty_mix_degrades_only_implicated_members_and_stays_deterministic() {
    use gpu_sim::FaultConfig;
    let dev = DeviceSpec::rtx3090();
    let trace = mix();
    let run_faulty = |workers: usize| {
        let front = Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers,
                queue_depth: QUEUE,
                tenant_quota: QUOTA,
                arrivals_per_epoch: EPOCH,
                max_cohort: 3,
                policy: hc_core::ResiliencePolicy {
                    faults: FaultConfig::uniform(11, 0.35),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        front.run_trace(&trace, &dev)
    };
    let base = run_faulty(1);
    assert!(
        base.counters.degraded > 0,
        "fault rate 0.35 must degrade something"
    );
    // Faults hit individual members, not whole cohorts: some cohort with
    // a degraded member also served a clean `Ok` member.
    let mixed_cohort = base.responses.iter().any(|r| {
        r.outcome.is_degraded()
            && base.responses.iter().any(|o| {
                o.cohort == r.cohort
                    && o.trace_index != r.trace_index
                    && matches!(o.outcome, Outcome::Ok(_))
            })
    });
    assert!(
        mixed_cohort,
        "a fault mid-cohort must degrade only the implicated members"
    );
    // Every served member (clean or degraded) still returns a result,
    // and rejected counters are unchanged by faults.
    assert_eq!(
        base.counters.admitted + base.counters.rejected(),
        base.counters.submitted
    );
    for workers in [2usize, 8] {
        let rep = run_faulty(workers);
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
    }
}

/// One edge deleted, one absent edge inserted — a minimal valid churn
/// delta against `g`.
fn one_edge_churn(g: &Csr) -> graph_sparse::DeltaCsr {
    let (dr, dc) = (0..g.nrows)
        .find_map(|r| g.row_cols(r).first().map(|&c| (r as u32, c)))
        .expect("generated graph has edges");
    let insert = (0..g.nrows as u32)
        .flat_map(|r| (0..g.ncols as u32).map(move |c| (r, c)))
        .find(|&(r, c)| (r, c) != (dr, dc) && !g.row_cols(r as usize).contains(&c))
        .expect("graph is sparse: an absent cell exists");
    graph_sparse::DeltaCsr::new(
        g.nrows,
        g.ncols,
        vec![(insert.0, insert.1, 1.5)],
        vec![(dr, dc)],
    )
    .expect("one insert, one delete: valid")
}

fn serve(g: &Arc<Csr>, i: usize) -> FrontEvent {
    FrontEvent::Serve(FrontRequest {
        tenant: TenantId([0, 1, 2, 3][i % 4]),
        request: Request {
            graph: Arc::clone(g),
            features: DenseMatrix::random_features(g.ncols, 16, i as u64),
        },
    })
}

/// Churn workload: two structures mutated mid-trace. Pins down the exact
/// stale-serve accounting — every same-epoch request on a mutated
/// structure is served stale by the old plan, the patched plan swaps in
/// at the epoch barrier and serves everything after — and that the whole
/// report is bit-identical at 1, 2 and 8 workers.
#[test]
fn churn_mix_counts_stale_serves_exactly_and_stays_deterministic() {
    let dev = DeviceSpec::rtx3090();
    let g0 = Arc::new(gen::erdos_renyi(144, 640, 700));
    let g1 = Arc::new(gen::erdos_renyi(144, 640, 701));
    let (d0, d1) = (one_edge_churn(&g0), one_edge_churn(&g1));
    let g0p = Arc::new(d0.apply(&g0).expect("valid delta"));
    let g1p = Arc::new(d1.apply(&g1).expect("valid delta"));

    // 6 arrivals per epoch; mutation epochs interleave serves on the
    // mutated structure (stale) and the untouched one (fresh).
    let graphs_by_index: Vec<&Arc<Csr>> = vec![
        &g0, &g1, &g0, &g1, &g0, &g1, // epoch 0: warm both plans
        &g0, /* mutate g0 */ &g0, &g1, &g0, &g1, // epoch 1
        &g0p, &g0p, &g1, /* mutate g1 */ &g1, &g0p, // epoch 2
        &g0p, &g1p, &g0p, &g1p, &g0p, &g1p, // epoch 3: all patched
    ];
    let mut events = Vec::new();
    for (i, g) in graphs_by_index.iter().enumerate() {
        if i == 7 {
            events.push(FrontEvent::Mutate(hc_serve::Mutation {
                base: Arc::clone(&g0),
                delta: d0.clone(),
            }));
        }
        if i == 14 {
            events.push(FrontEvent::Mutate(hc_serve::Mutation {
                base: Arc::clone(&g1),
                delta: d1.clone(),
            }));
        }
        events.push(serve(g, i));
    }
    assert_eq!(events.len(), 24);

    // Cold single-stream control for bit-exactness of served outputs.
    let cold: Vec<Option<DenseMatrix>> = events
        .iter()
        .map(|ev| match ev {
            FrontEvent::Serve(fr) => Some(
                Plan::prepare(&fr.request.graph, PlanSpec::hybrid(), &dev)
                    .execute(&fr.request.graph, &fr.request.features, &dev)
                    .z,
            ),
            FrontEvent::Mutate(_) => None,
        })
        .collect();

    let run_churn = |workers: usize| {
        let front = Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers,
                queue_depth: 12,
                tenant_quota: 6,
                arrivals_per_epoch: 6,
                max_cohort: 3,
                ..Default::default()
            },
        );
        front.run_events(&events, &dev)
    };

    let base = run_churn(1);
    let c = base.counters;
    assert_eq!(c.submitted, 22, "mutations are control-plane, not requests");
    assert_eq!(c.admitted, 22, "generous quota/queue: nothing shed");
    assert_eq!((c.mutations, c.patched_plans), (2, 2));
    // Epoch 1 serves three g0 requests (indices 6, 8, 10 — including the
    // one admitted *before* the mutation: admission batches the epoch),
    // epoch 2 serves two g1 requests (14, 16, straddling the second
    // mutation event at 15). All five ride the old plan, flagged stale.
    assert_eq!(c.stale_served, 5);
    let stale_idx: Vec<usize> = base
        .responses
        .iter()
        .filter(|r| r.stale)
        .map(|r| r.trace_index)
        .collect();
    assert_eq!(stale_idx, vec![6, 8, 10, 14, 16]);
    assert_eq!(base.cache.swaps, 2, "both patched plans swapped in");
    assert!(base.cache.stale_hits >= 2, "stale cohorts hit the old plan");

    // Both mutations patched the resident plan and swapped cleanly.
    assert_eq!(base.mutations.len(), 2);
    for (m, (g, gp)) in base.mutations.iter().zip([(&g0, &g0p), (&g1, &g1p)]) {
        assert!(m.patched, "resident plan must be patched, not re-prepared");
        assert_eq!(m.swap, Some(hc_serve::SwapOutcome::Swapped));
        assert_eq!(m.old_fp, graph_sparse::StructureFingerprint::of(g));
        assert_eq!(m.new_fp, Some(graph_sparse::StructureFingerprint::of(gp)));
        assert!(m.patch_sim_ms > 0.0, "dirty-window re-plan bills sim time");
    }
    assert_eq!(
        (base.mutations[0].trace_index, base.mutations[0].epoch),
        (7, 1)
    );
    assert_eq!(
        (base.mutations[1].trace_index, base.mutations[1].epoch),
        (15, 2)
    );

    // Post-swap serves on the mutated structures are cache hits on the
    // patched plan, never stale.
    for r in &base.responses {
        if r.trace_index >= 18 {
            assert!(
                r.hit,
                "index {}: patched plan must be resident",
                r.trace_index
            );
            assert!(
                !r.stale,
                "index {}: swap retired the stale plan",
                r.trace_index
            );
        }
    }

    // Every served output — stale-served and patched-served alike — is
    // bit-exact against the cold control.
    for r in &base.responses {
        let z = r.z().expect("clean mix: every request serves");
        let control = cold[r.trace_index].as_ref().expect("serve index");
        assert_eq!(z, control, "trace index {} diverged", r.trace_index);
    }

    // Bit-identical reports at 2 and 8 workers.
    for workers in [2usize, 8] {
        let rep = run_churn(workers);
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
        assert_eq!(rep.mutations, base.mutations);
        assert_eq!(rep.latency, base.latency);
        assert_eq!(rep.tenants, base.tenants);
        assert_eq!(rep.cache, base.cache);
    }
}

/// A quarantined fingerprint stays quarantined across a patch swap: the
/// patched plan inherits the bar, is never admitted to the cache, and
/// every subsequent request on the mutated structure is served by a
/// fresh uncached prepare (correct outputs, `hit == false`).
#[test]
fn quarantine_survives_the_swap_and_is_never_re_served() {
    let dev = DeviceSpec::rtx3090();
    let g0 = Arc::new(gen::erdos_renyi(144, 640, 702));
    let delta = one_edge_churn(&g0);
    let g0p = Arc::new(delta.apply(&g0).expect("valid delta"));
    let old_fp = graph_sparse::StructureFingerprint::of(&g0);
    let new_fp = graph_sparse::StructureFingerprint::of(&g0p);

    let graphs_by_index: Vec<&Arc<Csr>> = vec![
        &g0, &g0, &g0, // epoch 0: warm the resident plan
        &g0, /* mutate */ &g0, // epoch 1: stale serves
        &g0p, &g0p, &g0p, // epoch 2: quarantined structure
    ];
    let mut events = Vec::new();
    for (i, g) in graphs_by_index.iter().enumerate() {
        if i == 4 {
            events.push(FrontEvent::Mutate(hc_serve::Mutation {
                base: Arc::clone(&g0),
                delta: delta.clone(),
            }));
        }
        events.push(serve(g, i));
    }
    assert_eq!(events.len(), 9);

    let cold: Vec<Option<DenseMatrix>> = events
        .iter()
        .map(|ev| match ev {
            FrontEvent::Serve(fr) => Some(
                Plan::prepare(&fr.request.graph, PlanSpec::hybrid(), &dev)
                    .execute(&fr.request.graph, &fr.request.features, &dev)
                    .z,
            ),
            FrontEvent::Mutate(_) => None,
        })
        .collect();

    let run_quarantined = |workers: usize| {
        let front = Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            4,
            FrontConfig {
                workers,
                queue_depth: 8,
                tenant_quota: 4,
                arrivals_per_epoch: 3,
                max_cohort: 2,
                ..Default::default()
            },
        );
        // The mutated structure was implicated before the churn arrived
        // (say, by a poisoning fault in an earlier batch).
        front.cache().quarantine(new_fp);
        let rep = front.run_events(&events, &dev);
        let resident_after = front.cache().peek(new_fp).is_some();
        let still_quarantined = front.cache().is_quarantined(new_fp);
        (rep, resident_after, still_quarantined)
    };

    let (base, resident_after, still_quarantined) = run_quarantined(1);
    assert!(!resident_after, "quarantined fp must never become resident");
    assert!(still_quarantined, "quarantine is permanent across the swap");

    // The mutation still patched the resident old plan, but the cache
    // refused the swap and kept the lineage barred.
    assert_eq!(base.mutations.len(), 1);
    let m = &base.mutations[0];
    assert!(m.patched);
    assert_eq!(m.old_fp, old_fp);
    assert_eq!(m.new_fp, Some(new_fp));
    assert_eq!(m.swap, Some(hc_serve::SwapOutcome::Quarantined));
    assert_eq!(base.cache.swaps, 0, "a quarantined swap is not a swap");
    assert!(
        base.cache.quarantine_misses > 0,
        "serves on the barred structure re-prepare outside the cache"
    );

    // Requests on the quarantined structure are still served correctly —
    // just never from the cache.
    for r in &base.responses {
        if r.trace_index >= 6 {
            assert!(
                !r.hit,
                "index {}: barred structure must miss",
                r.trace_index
            );
            assert!(!r.stale);
        }
        let z = r.z().expect("clean mix: every request serves");
        let control = cold[r.trace_index].as_ref().expect("serve index");
        assert_eq!(z, control, "trace index {} diverged", r.trace_index);
    }
    assert_eq!(
        base.counters.stale_served, 2,
        "epoch-1 serves ride the old plan"
    );

    for workers in [2usize, 8] {
        let (rep, resident, quarantined) = run_quarantined(workers);
        assert!(!resident && quarantined, "workers={workers}");
        assert_eq!(rep.responses, base.responses, "workers={workers}");
        assert_eq!(rep.counters, base.counters);
        assert_eq!(rep.mutations, base.mutations);
        assert_eq!(rep.cache, base.cache);
    }
}

/// Crash-restart-resume at 1, 2 and 8 workers: the churn mix (with a
/// pre-barred lineage, as in the quarantine test) is run through the
/// durable front with an injected crash, recovered from (snapshot, WAL)
/// and resumed — and the merged report is bit-exact against the
/// uncrashed control at every worker count, with the same report across
/// worker counts. The quarantine bar demonstrably survives the restart
/// via the WAL marker alone: the recovered front starts from a fresh,
/// unbarred cache.
#[test]
fn crash_restart_resume_is_bit_exact_at_any_worker_count() {
    use gpu_sim::{CrashConfig, CrashScope};
    use hc_serve::{run_to_completion, DurabilityConfig, DurableFront};
    use std::path::PathBuf;

    let dev = DeviceSpec::rtx3090();
    let g0 = Arc::new(gen::erdos_renyi(144, 640, 700));
    let g1 = Arc::new(gen::erdos_renyi(144, 640, 701));
    let (d0, d1) = (one_edge_churn(&g0), one_edge_churn(&g1));
    let g0p = Arc::new(d0.apply(&g0).expect("valid delta"));
    let g1p = Arc::new(d1.apply(&g1).expect("valid delta"));
    let barred_fp = graph_sparse::StructureFingerprint::of(&g1p);

    let graphs_by_index: Vec<&Arc<Csr>> = vec![
        &g0, &g1, &g0, &g1, &g0, &g1, // epoch 0
        &g0, /* mutate g0 */ &g0, &g1, &g0, &g1, // epoch 1
        &g0p, &g0p, &g1, /* mutate g1 */ &g1, &g0p, // epoch 2
        &g0p, &g1p, &g0p, &g1p, &g0p, &g1p, // epoch 3
    ];
    let mut events = Vec::new();
    for (i, g) in graphs_by_index.iter().enumerate() {
        if i == 7 {
            events.push(FrontEvent::Mutate(hc_serve::Mutation {
                base: Arc::clone(&g0),
                delta: d0.clone(),
            }));
        }
        if i == 14 {
            events.push(FrontEvent::Mutate(hc_serve::Mutation {
                base: Arc::clone(&g1),
                delta: d1.clone(),
            }));
        }
        events.push(serve(g, i));
    }

    let scratch = |name: &str| {
        let dir = std::env::temp_dir();
        let mut wal_path = dir.clone();
        wal_path.push(format!("hc-hammer-{}-{}.wal", std::process::id(), name));
        let mut snapshot_path = dir;
        snapshot_path.push(format!("hc-hammer-{}-{}.snap", std::process::id(), name));
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&snapshot_path);
        DurabilityConfig {
            wal_path,
            snapshot_path,
            snapshot_every: 2,
        }
    };
    let cleanup = |cfg: &DurabilityConfig| {
        let _ = std::fs::remove_file(&cfg.wal_path);
        let _ = std::fs::remove_file(&cfg.snapshot_path);
        let mut tmp = cfg.snapshot_path.as_os_str().to_owned();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(PathBuf::from(tmp));
    };
    let mk_front = |workers: usize, barred: bool| {
        move || {
            let front = Front::new(
                1 << 30,
                PlanSpec::hybrid(),
                4,
                FrontConfig {
                    workers,
                    queue_depth: 12,
                    tenant_quota: 6,
                    arrivals_per_epoch: 6,
                    max_cohort: 3,
                    ..Default::default()
                },
            );
            if barred {
                front.cache().quarantine(barred_fp);
            }
            front
        }
    };

    // Uncrashed control, identical across worker counts (pinned by the
    // plain hammer tests; re-checked here because the durable merge path
    // must reproduce it too). The sweep runs unbarred: a factory-time
    // quarantine would be re-executed by the recovery factory *and*
    // restored from the marker, double-counting the stat — the barred
    // lineage is exercised explicitly below with an unbarred recovery
    // factory instead.
    let control = mk_front(1, false)().run_events(&events, &dev);

    // Horizon probe through the durable wrapper.
    let cfg = scratch("probe");
    let probe = run_to_completion(&mk_front(1, false), &cfg, &events, &dev, CrashConfig::off())
        .expect("uncrashed durable run");
    cleanup(&cfg);
    assert_eq!(probe.report.responses, control.responses);
    assert_eq!(probe.report.counters, control.counters);
    let horizon = probe.crash_points;
    assert!(horizon >= 6, "churn trace must expose crash points");

    // Crash early, mid and late, at every worker count: merged recovered
    // reports are bit-exact vs the control and vs each other.
    for k in [0, horizon / 2, horizon - 1] {
        let mut per_worker = Vec::new();
        for workers in [1usize, 2, 8] {
            let cfg = scratch(&format!("w{workers}k{k}"));
            let out = run_to_completion(
                &mk_front(workers, false),
                &cfg,
                &events,
                &dev,
                CrashConfig::at(k),
            )
            .unwrap_or_else(|e| panic!("workers={workers} k={k}: {e}"));
            cleanup(&cfg);
            assert_eq!(out.attempts, 2, "workers={workers} k={k}: one crash");
            for r in &out.recoveries {
                assert_eq!(r.double_applied, 0, "workers={workers} k={k}");
            }
            assert_eq!(out.report.responses, control.responses, "w={workers} k={k}");
            assert_eq!(out.report.counters, control.counters, "w={workers} k={k}");
            assert_eq!(out.report.mutations, control.mutations, "w={workers} k={k}");
            assert_eq!(out.report.latency, control.latency, "w={workers} k={k}");
            assert_eq!(out.report.tenants, control.tenants, "w={workers} k={k}");
            assert_eq!(out.report.cache, control.cache, "w={workers} k={k}");
            per_worker.push(out.report);
        }
        for rep in &per_worker[1..] {
            assert_eq!(rep.responses, per_worker[0].responses, "k={k}");
            assert_eq!(rep.counters, per_worker[0].counters, "k={k}");
        }
    }

    // Quarantine lineage survives the restart through the WAL alone:
    // crash late (the bar is long since durable in every marker), then
    // recover into a fresh *unbarred* front — the bar must come back
    // from the log, not from the factory.
    let cfg = scratch("lineage");
    let mut df =
        DurableFront::create(mk_front(1, true)(), cfg.clone()).expect("create durable front");
    let scope = CrashScope::install(CrashConfig::at(horizon - 1));
    let attempt = df.run(&events, &dev).expect("run to the injected crash");
    drop(scope);
    drop(df);
    assert!(attempt.crash.is_some(), "late crash point must fire");
    let (recovered, stats) =
        DurableFront::recover(mk_front(1, false)(), cfg.clone(), &events, &dev)
            .expect("recover from disk");
    cleanup(&cfg);
    assert!(
        recovered.front().cache().is_quarantined(barred_fp),
        "quarantine lineage must survive the restart via the marker"
    );
    assert!(stats.restored_plans > 0, "warm recovery rebuilds plans");
}
