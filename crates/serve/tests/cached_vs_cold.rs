//! Differential suite: serving through the plan cache must be
//! bit-identical to preparing a fresh plan per request — for every kernel
//! family, on generated graphs and the karate-club fixture, and even after
//! evictions have forced a re-prepare. The cache is an optimization; any
//! observable difference in output is a bug.

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, io, Csr, DenseMatrix};
use hc_core::{KernelFamily, Plan, PlanSpec};
use hc_parallel::sync::thread;
use hc_serve::{BatchDriver, PlanCache, Request, SharedPlanCache};

fn karate() -> Csr {
    io::read_edge_list_file(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/karate.txt"
    ))
    .expect("karate fixture must load")
    .gcn_normalize()
}

fn test_graphs() -> Vec<(&'static str, Csr)> {
    vec![
        ("karate", karate()),
        ("erdos_renyi", gen::erdos_renyi(256, 1_500, 11)),
        ("community", gen::community(512, 4_000, 16, 0.9, 12)),
        ("molecules", gen::molecules(300, 700, 13)),
    ]
}

/// Cold reference: a plan prepared from scratch for this one request.
fn cold(a: &Csr, x: &DenseMatrix, spec: PlanSpec, dev: &DeviceSpec) -> DenseMatrix {
    Plan::prepare(a, spec, dev).execute(a, x, dev).z
}

#[test]
fn cached_plans_are_bit_identical_to_cold_for_every_family() {
    let dev = DeviceSpec::rtx3090();
    for family in KernelFamily::ALL {
        let spec = PlanSpec {
            family,
            use_loa: false,
        };
        let mut cache = PlanCache::new(u64::MAX, spec);
        for (name, a) in &test_graphs() {
            let x = DenseMatrix::random_features(a.ncols, 16, 21);
            let want = cold(a, &x, spec, &dev);
            // Miss, then hit: both must equal the cold path exactly.
            for round in 0..2 {
                let (plan, hit) = cache.get_or_prepare(a, &dev);
                assert_eq!(hit, round > 0);
                assert_eq!(
                    plan.execute(a, &x, &dev).z,
                    want,
                    "{} on {name}: cached output (round {round}) differs from cold",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn loa_cached_plans_match_cold_on_square_graphs() {
    let dev = DeviceSpec::rtx3090();
    let spec = PlanSpec {
        family: KernelFamily::Hybrid,
        use_loa: true,
    };
    let mut cache = PlanCache::new(u64::MAX, spec);
    for (name, a) in &test_graphs() {
        let x = DenseMatrix::random_features(a.ncols, 8, 22);
        let want = cold(a, &x, spec, &dev);
        let (plan, _) = cache.get_or_prepare(a, &dev);
        assert_eq!(
            plan.execute(a, &x, &dev).z,
            want,
            "LOA plan on {name}: cached differs from cold"
        );
        // And the LOA path must still be numerically the true product.
        assert!(a.spmm_reference(&x).max_abs_diff(&want) < 0.05);
    }
}

/// The concurrent sharded cache inherits the same contract: plans served
/// through `SharedPlanCache` — hit or miss, from any number of threads —
/// must be bit-identical to a cold prepare-per-request, for every kernel
/// family.
#[test]
fn shared_cache_is_bit_identical_to_cold_for_every_family() {
    let dev = DeviceSpec::rtx3090();
    for family in KernelFamily::ALL {
        let spec = PlanSpec {
            family,
            use_loa: false,
        };
        let cache = SharedPlanCache::new(u64::MAX / 8, spec, 4);
        for (name, a) in &test_graphs() {
            let x = DenseMatrix::random_features(a.ncols, 16, 21);
            let want = cold(a, &x, spec, &dev);
            for round in 0..2 {
                let (plan, hit) = cache.get_or_prepare(a, &dev);
                assert_eq!(hit, round > 0);
                assert_eq!(
                    plan.execute(a, &x, &dev).z,
                    want,
                    "{} on {name}: shared-cache output (round {round}) differs from cold",
                    family.name()
                );
            }
        }
    }
}

/// Concurrent serves through the shared cache agree with the cold path
/// even while other threads are mutating the same shards.
#[test]
fn shared_cache_is_bit_identical_under_concurrency() {
    let dev = DeviceSpec::rtx3090();
    let spec = PlanSpec::hybrid();
    let cache = SharedPlanCache::new(u64::MAX / 8, spec, 4);
    let graphs = test_graphs();
    let want: Vec<DenseMatrix> = graphs
        .iter()
        .map(|(_, a)| {
            let x = DenseMatrix::random_features(a.ncols, 12, 31);
            cold(a, &x, spec, &dev)
        })
        .collect();
    thread::scope(|s| {
        let (cache, graphs, want, dev) = (&cache, &graphs, &want, &dev);
        for t in 0..4usize {
            s.spawn(move |_| {
                for round in 0..2usize {
                    for idx in 0..graphs.len() {
                        let i = (idx + t) % graphs.len();
                        let (name, a) = &graphs[i];
                        let x = DenseMatrix::random_features(a.ncols, 12, 31);
                        let (plan, _) = cache.get_or_prepare(a, dev);
                        assert_eq!(
                            plan.execute(a, &x, dev).z,
                            want[i],
                            "thread {t} round {round} on {name}: differs from cold"
                        );
                    }
                }
            });
        }
    })
    .expect("serving threads must not panic");
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, s.requests);
    assert_eq!(s.requests, 4 * 2 * 4);
}

#[test]
fn eviction_and_reprepare_keep_outputs_bit_identical() {
    let dev = DeviceSpec::rtx3090();
    let spec = PlanSpec::hybrid();
    let graphs: Vec<Arc<Csr>> = test_graphs()
        .into_iter()
        .map(|(_, g)| Arc::new(g))
        .collect();

    // Budget of largest-plan + smallest-plan: every plan is individually
    // retainable (nothing rejected), but the four together overflow, so
    // cycling through the graphs forces evictions and re-preparations.
    let sizes: Vec<u64> = graphs
        .iter()
        .map(|g| Plan::prepare(g, spec, &dev).approx_bytes())
        .collect();
    let budget = sizes.iter().max().unwrap() + sizes.iter().min().unwrap();
    let mut driver = BatchDriver::new(budget, spec);

    let requests: Vec<Request> = (0..3)
        .flat_map(|round| {
            graphs.iter().enumerate().map(move |(i, g)| Request {
                graph: Arc::clone(g),
                features: DenseMatrix::random_features(g.ncols, 8, (round * 10 + i) as u64),
            })
        })
        .collect();
    let responses = driver.run(&requests, &dev);

    let stats = driver.stats();
    assert_eq!(stats.requests, requests.len() as u64);
    assert_eq!(stats.hits + stats.misses, stats.requests);
    assert_eq!(stats.rejected, 0, "every plan fits the budget individually");
    assert!(
        stats.evictions > 0,
        "budget was meant to force evictions; got {stats:?}"
    );

    for (req, resp) in requests.iter().zip(&responses) {
        let want = cold(&req.graph, &req.features, spec, &dev);
        assert_eq!(
            resp.z().expect("faults off: every request serves"),
            &want,
            "response after eviction/re-prepare differs from cold path"
        );
    }
}
