//! Chaos suite: randomized fault schedules against the batched driver.
//!
//! The serving contract under test:
//!
//! * with faults **disabled**, the resilient path is bit-identical to the
//!   plain one (resilience is free when nothing fails);
//! * with faults **enabled**, every request either returns a result
//!   bit-identical to a fault-free execution of the step that produced it
//!   (`Ok`/`Degraded`) or a typed error (`Failed`) — the process never
//!   panics;
//! * once a structure is quarantined, no request for it ever hits the
//!   cache again.

use std::collections::HashSet;
use std::sync::Arc;

use gpu_sim::{DeviceSpec, FaultConfig};
use graph_sparse::{gen, Csr, DenseMatrix, StructureFingerprint};
use hc_core::{FallbackStep, KernelFamily, PlanSpec, ResiliencePolicy};
use hc_serve::{BatchDriver, Outcome, Request};
use proptest::prelude::*;

fn graphs() -> Vec<Arc<Csr>> {
    vec![
        Arc::new(gen::erdos_renyi(96, 450, 1)),
        Arc::new(gen::community(128, 700, 8, 0.9, 2)),
        Arc::new(gen::molecules(80, 200, 3)),
    ]
}

fn requests(n: usize) -> Vec<Request> {
    let gs = graphs();
    (0..n)
        .map(|i| {
            let g = Arc::clone(&gs[i % gs.len()]);
            Request {
                features: DenseMatrix::random_features(g.ncols, 8, 100 + i as u64),
                graph: g,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline invariant: under any fault schedule, every served
    /// result is bit-identical to a fault-free run of the step that
    /// produced it, failures are typed, and quarantine is permanent.
    #[test]
    fn every_outcome_is_exact_or_typed_under_faults(
        seed in 0u64..1_000_000,
        rate in 0.05f64..0.6,
        family_ix in 0usize..4,
        retries in 0u32..3,
        budget_ix in 0usize..2,
    ) {
        let dev = DeviceSpec::rtx3090();
        let family = KernelFamily::ALL[family_ix];
        let spec = PlanSpec { family, use_loa: false };
        let budget = [60_000, u64::MAX][budget_ix];
        let policy = ResiliencePolicy {
            max_retries: retries,
            faults: FaultConfig::uniform(seed, rate),
            ..Default::default()
        };
        let reqs = requests(9);

        let mut driver = BatchDriver::with_policy(budget, spec, policy);
        let mut quarantined_before_serve: Vec<bool> = Vec::new();
        let mut responses = Vec::new();
        for req in &reqs {
            let fp = StructureFingerprint::of(&req.graph);
            quarantined_before_serve.push(driver.cache.is_quarantined(fp));
            responses.push(driver.serve(req, &dev));
        }

        // Fault-free references per (structure, step) — plans prepared
        // outside any fault scope.
        let mut clean = std::collections::HashMap::new();
        for req in &reqs {
            let fp = StructureFingerprint::of(&req.graph);
            clean.entry(fp).or_insert_with(|| {
                hc_core::Plan::prepare(&req.graph, spec, &dev)
            });
        }

        let mut seen_quarantine = HashSet::new();
        for (i, (req, resp)) in reqs.iter().zip(&responses).enumerate() {
            let fp = StructureFingerprint::of(&req.graph);
            let plan = &clean[&fp];
            match &resp.outcome {
                Outcome::Ok(z) => {
                    prop_assert_eq!(
                        z, &plan.execute_as(family, &req.graph, &req.features, &dev).z,
                        "request {}: Ok result must be bit-clean", i
                    );
                }
                Outcome::Degraded { z, fallback, .. } => {
                    let want = match fallback {
                        FallbackStep::Family(f) =>
                            plan.execute_as(*f, &req.graph, &req.features, &dev).z,
                        FallbackStep::CpuReference =>
                            req.graph.spmm_reference(&req.features),
                    };
                    prop_assert_eq!(
                        z, &want,
                        "request {}: degraded result must match fault-free {}", i, fallback
                    );
                }
                Outcome::Failed(e) => {
                    // Typed, displayable, and chain-shaped: only
                    // exhaustion can end a well-formed request.
                    prop_assert!(
                        matches!(e, hc_core::HcError::FallbacksExhausted { .. }),
                        "request {}: unexpected failure {}", i, e
                    );
                }
            }
            // Quarantine is forever: a structure quarantined before this
            // request must not have produced a cache hit.
            if quarantined_before_serve[i] {
                prop_assert!(!resp.hit, "request {}: served a quarantined structure from cache", i);
            }
            if driver.cache.is_quarantined(fp) {
                seen_quarantine.insert(fp);
            }
        }
        // And the cache agrees nothing quarantined is resident.
        for fp in seen_quarantine {
            prop_assert!(!driver.cache.contains(fp));
        }
        let s = driver.stats();
        prop_assert_eq!(s.hits + s.misses, s.requests);
        prop_assert_eq!(s.quarantined as usize, {
            let mut q = 0;
            for g in graphs() {
                if driver.cache.is_quarantined(StructureFingerprint::of(&g)) {
                    q += 1;
                }
            }
            q
        });
    }

    /// Resilience must be invisible when faults are off: the resilient
    /// driver's stream equals the default driver's, bit for bit, outcome
    /// for outcome.
    #[test]
    fn disabled_faults_are_bit_identical_to_plain_serving(
        family_ix in 0usize..4,
        n in 4usize..10,
    ) {
        let dev = DeviceSpec::rtx3090();
        let spec = PlanSpec { family: KernelFamily::ALL[family_ix], use_loa: false };
        let reqs = requests(n);

        let mut plain = BatchDriver::new(u64::MAX, spec);
        let mut resilient = BatchDriver::with_policy(
            u64::MAX,
            spec,
            ResiliencePolicy { faults: FaultConfig::off(), ..Default::default() },
        );
        let a = plain.run(&reqs, &dev);
        let b = resilient.run(&reqs, &dev);
        prop_assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(&ra.outcome, &rb.outcome);
            prop_assert!(matches!(ra.outcome, Outcome::Ok(_)));
            prop_assert_eq!(ra.hit, rb.hit);
            prop_assert_eq!(ra.wasted_sim_ms, 0.0);
        }
        prop_assert_eq!(plain.stats(), resilient.stats());
        prop_assert_eq!(plain.stats().quarantined, 0);
    }

    /// Same seed, same schedule, same everything: a chaos batch re-run is
    /// reproducible end to end.
    #[test]
    fn chaos_batches_are_reproducible(
        seed in 0u64..1_000_000,
        rate in 0.1f64..0.7,
    ) {
        let dev = DeviceSpec::rtx3090();
        let spec = PlanSpec::hybrid();
        let policy = ResiliencePolicy {
            faults: FaultConfig::uniform(seed, rate),
            ..Default::default()
        };
        let reqs = requests(8);
        let run = || {
            let mut d = BatchDriver::with_policy(u64::MAX, spec, policy);
            let rs = d.run(&reqs, &dev);
            (rs, d.stats())
        };
        let (ra, sa) = run();
        let (rb, sb) = run();
        prop_assert_eq!(sa, sb);
        for (x, y) in ra.iter().zip(&rb) {
            prop_assert_eq!(&x.outcome, &y.outcome);
            prop_assert_eq!(x.hit, y.hit);
            prop_assert_eq!(x.wasted_sim_ms, y.wasted_sim_ms);
        }
    }
}
