//! Restart-equivalence chaos suite: for *every* point in a crash
//! schedule — mid-epoch, mid-WAL-append (torn record), between a WAL
//! append and its plan swap (intact unmarked record), mid-snapshot —
//! crashing there, recovering from (snapshot, WAL) and finishing the
//! trace yields a report bit-identical to the uncrashed run: responses,
//! counters, mutation outcomes, latency percentiles, tenant accounting
//! and cache statistics. Deltas are never double-applied; torn tails
//! roll back to the last fsync marker.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use gpu_sim::{CrashConfig, CrashSite, DeviceSpec, FaultConfig};
use graph_sparse::{gen, Csr, DeltaCsr, DenseMatrix};
use hc_core::{PlanSpec, ResiliencePolicy};
use hc_serve::{
    run_to_completion, DurabilityConfig, Front, FrontConfig, FrontEvent, FrontReport, FrontRequest,
    Mutation, Request, TenantId,
};

const EPOCH: usize = 6;

fn scratch(name: &str) -> DurabilityConfig {
    let dir = std::env::temp_dir();
    let mut wal_path = dir.clone();
    wal_path.push(format!("hc-req-{}-{}.wal", std::process::id(), name));
    let mut snapshot_path = dir;
    snapshot_path.push(format!("hc-req-{}-{}.snap", std::process::id(), name));
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(&snapshot_path);
    DurabilityConfig {
        wal_path,
        snapshot_path,
        snapshot_every: 3,
    }
}

fn cleanup(cfg: &DurabilityConfig) {
    let _ = std::fs::remove_file(&cfg.wal_path);
    let _ = std::fs::remove_file(&cfg.snapshot_path);
    let mut tmp = cfg.snapshot_path.as_os_str().to_owned();
    tmp.push(".tmp");
    let _ = std::fs::remove_file(PathBuf::from(tmp));
}

/// One absent edge inserted, one present edge deleted — the smallest
/// structurally effective delta against `a`.
fn churn_delta(a: &Csr) -> DeltaCsr {
    let (dr, dc) = (0..a.nrows)
        .find_map(|r| a.row_cols(r).first().map(|&c| (r as u32, c)))
        .expect("graph has edges");
    let (ir, ic) = (0..a.nrows as u32)
        .flat_map(|r| (0..a.ncols as u32).map(move |c| (r, c)))
        .find(|&(r, c)| (r, c) != (dr, dc) && !a.row_cols(r as usize).contains(&c))
        .expect("graph has a free cell");
    DeltaCsr::new(a.nrows, a.ncols, vec![(ir, ic, 1.0)], vec![(dr, dc)]).expect("valid delta")
}

fn serve(tenant: u32, g: &Arc<Csr>, seed: u64) -> FrontEvent {
    FrontEvent::Serve(FrontRequest {
        tenant: TenantId(tenant),
        request: Request {
            graph: Arc::clone(g),
            features: DenseMatrix::random_features(g.ncols, 12, seed),
        },
    })
}

/// A mixed trace exercising every recovery path: repeated serves on
/// three structures (plans resident, cohorts form), a two-deep mutation
/// chain on one lineage (recovery must replay `prepare` + two patches),
/// serves on the mutated graphs (patched plans get hits), and a fault
/// stream hot enough to quarantine at least one structure.
fn trace() -> Vec<FrontEvent> {
    let g0 = Arc::new(gen::erdos_renyi(96, 420, 901));
    let g1 = Arc::new(gen::erdos_renyi(112, 500, 902));
    let g2 = Arc::new(gen::erdos_renyi(80, 360, 903));
    let d1 = churn_delta(&g0);
    let g0b = Arc::new(d1.apply(&g0).expect("delta applies"));
    let d2 = churn_delta(&g0b);
    let g0c = Arc::new(d2.apply(&g0b).expect("delta applies"));
    let d3 = churn_delta(&g1);
    let g1b = Arc::new(d3.apply(&g1).expect("delta applies"));

    let mut ev: Vec<FrontEvent> = Vec::new();
    // Epoch 0-1: warm the cache on the three bases.
    for i in 0..12u64 {
        let g = [&g0, &g1, &g2][(i % 3) as usize];
        ev.push(serve((i % 4) as u32, g, i));
    }
    // Epoch 2: first mutation on g0's lineage, g0 keeps serving stale.
    ev.push(FrontEvent::Mutate(Mutation {
        base: Arc::clone(&g0),
        delta: d1,
    }));
    for i in 12..17u64 {
        ev.push(serve((i % 4) as u32, [&g0, &g1][(i % 2) as usize], i));
    }
    // Epoch 3: serves hit the patched plan for g0b; mutate g1 too.
    ev.push(FrontEvent::Mutate(Mutation {
        base: Arc::clone(&g1),
        delta: d3,
    }));
    for i in 17..22u64 {
        ev.push(serve((i % 4) as u32, [&g0b, &g2][(i % 2) as usize], i));
    }
    // Epoch 4: second hop of the g0 chain.
    ev.push(FrontEvent::Mutate(Mutation {
        base: Arc::clone(&g0b),
        delta: d2,
    }));
    for i in 22..27u64 {
        ev.push(serve((i % 4) as u32, [&g1b, &g0b][(i % 2) as usize], i));
    }
    // Epochs 5-7: tip-of-chain traffic across every structure.
    for i in 27..45u64 {
        let g = [&g0c, &g1b, &g2, &g0b][(i % 4) as usize];
        ev.push(serve((i % 4) as u32, g, i));
    }
    ev
}

fn mk_front() -> Front {
    Front::new(
        1 << 30,
        PlanSpec::hybrid(),
        4,
        FrontConfig {
            workers: 2,
            queue_depth: 8,
            tenant_quota: 4,
            arrivals_per_epoch: EPOCH,
            max_cohort: 3,
            slo_sim_ms: 40.0,
            policy: ResiliencePolicy {
                faults: FaultConfig::uniform(0, 0.15),
                ..Default::default()
            },
        },
    )
}

/// Everything deterministic in a report — all of it except `wall_ms`.
fn assert_reports_equal(got: &FrontReport, want: &FrontReport, ctx: &str) {
    assert_eq!(got.responses, want.responses, "{ctx}: responses");
    assert_eq!(got.counters, want.counters, "{ctx}: counters");
    assert_eq!(got.mutations, want.mutations, "{ctx}: mutation outcomes");
    assert_eq!(got.latency, want.latency, "{ctx}: latency stats");
    assert_eq!(got.tenants, want.tenants, "{ctx}: tenant stats");
    assert_eq!(got.cache, want.cache, "{ctx}: cache stats");
}

#[test]
fn every_crash_point_recovers_to_the_uncrashed_run() {
    let dev = DeviceSpec::rtx3090();
    let events = trace();
    let control = mk_front().run_events(&events, &dev);
    assert!(
        control.counters.patched_plans >= 3,
        "trace must exercise the patch path"
    );
    assert!(
        control.counters.quarantined_cohorts > 0,
        "trace must exercise quarantine"
    );

    // Uncrashed probe through the durable wrapper: bit-identical to the
    // plain front, and it measures the schedule horizon.
    let cfg = scratch("probe");
    let probe = run_to_completion(&mk_front, &cfg, &events, &dev, CrashConfig::off())
        .expect("uncrashed durable run");
    cleanup(&cfg);
    assert_eq!(probe.attempts, 1);
    assert!(probe.crashes.is_empty());
    assert_reports_equal(&probe.report, &control, "uncrashed durable run");
    let horizon = probe.crash_points;
    assert!(
        horizon >= 12,
        "schedule too small to mean anything: {horizon}"
    );

    let mut sites_hit: HashSet<CrashSite> = HashSet::new();
    for k in 0..horizon {
        let cfg = scratch(&format!("k{k}"));
        let out = run_to_completion(&mk_front, &cfg, &events, &dev, CrashConfig::at(k))
            .unwrap_or_else(|e| panic!("crash point {k}: recovery failed: {e}"));
        cleanup(&cfg);
        assert_eq!(
            out.crashes.len(),
            1,
            "crash point {k} must fire exactly once"
        );
        assert_eq!(out.attempts, 2, "one crash, one recovery");
        sites_hit.insert(out.crashes[0]);
        for (i, r) in out.recoveries.iter().enumerate() {
            assert_eq!(
                r.double_applied, 0,
                "crash point {k}, recovery {i}: delta double-applied"
            );
            if out.crashes[i] == CrashSite::MidWalAppend {
                assert!(
                    r.torn_bytes > 0,
                    "crash point {k}: a mid-append crash must leave a torn tail"
                );
            }
            if out.crashes[i] == CrashSite::BetweenAppendAndSwap {
                assert_eq!(
                    r.torn_bytes, 0,
                    "crash point {k}: record was fully appended, nothing torn"
                );
                assert!(
                    r.rolled_back_records > 0,
                    "crash point {k}: the unmarked record must roll back"
                );
            }
        }
        assert_reports_equal(&out.report, &control, &format!("crash point {k}"));
    }
    for site in CrashSite::ALL {
        assert!(
            sites_hit.contains(&site),
            "schedule never crashed at {site}: {sites_hit:?}"
        );
    }
}

#[test]
fn seeded_crash_schedules_are_deterministic() {
    let dev = DeviceSpec::rtx3090();
    let events = trace();
    for seed in [7u64, 8, 9] {
        let run = |name: &str| {
            let cfg = scratch(name);
            let out = run_to_completion(
                &mk_front,
                &cfg,
                &events,
                &dev,
                CrashConfig::seeded(seed, 18),
            )
            .expect("seeded run completes");
            cleanup(&cfg);
            out
        };
        let a = run(&format!("seed{seed}a"));
        let b = run(&format!("seed{seed}b"));
        assert_eq!(a.crashes, b.crashes, "seed {seed}: crash sites differ");
        assert_eq!(a.attempts, b.attempts, "seed {seed}");
        assert_reports_equal(&a.report, &b.report, &format!("seed {seed}"));
    }
}
