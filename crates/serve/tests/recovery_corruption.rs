//! Corruption suite for the durability formats: hostile bytes fed to
//! the WAL replayer and the snapshot loader must come back as a typed
//! [`RecoveryError`] (or, for a WAL tail, a clean rollback to the last
//! fsync marker) — never a panic, never a silently wrong recovery.
//!
//! Pinned defect classes: truncation at any offset, single-bit flips
//! anywhere in the file, whole records duplicated, and records whose
//! logged post-apply fingerprint disagrees with the delta.

use std::path::PathBuf;

use graph_sparse::{gen, DeltaCsr, StructureFingerprint};
use hc_serve::{CacheStats, DeltaRecord, EpochMarker, FrontCounters, Snapshot, Wal, WalRecord};
use proptest::prelude::*;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hc-corrupt-{}-{}.bin", std::process::id(), name));
    p
}

/// One guaranteed-absent edge of `a`, as an insert delta.
fn free_cell_delta(a: &graph_sparse::Csr) -> DeltaCsr {
    let (r, c) = (0..a.nrows as u32)
        .flat_map(|r| (0..a.ncols as u32).map(move |c| (r, c)))
        .find(|&(r, c)| !a.row_cols(r as usize).contains(&c))
        .expect("graph has a free cell");
    DeltaCsr::new(a.nrows, a.ncols, vec![(r, c, 1.0)], vec![]).expect("valid")
}

/// A healthy WAL with `n` delta records and a marker every third
/// record, returned as raw bytes.
fn healthy_wal(n: usize) -> Vec<u8> {
    let path = scratch(&format!("mk{n}"));
    let mut wal = Wal::create(&path).expect("create");
    for i in 0..n {
        let g = gen::erdos_renyi(48, 180, 40 + i as u64);
        let base_fp = StructureFingerprint::of(&g);
        let delta = free_cell_delta(&g);
        let new_fp = StructureFingerprint::of(&delta.apply(&g).expect("applies"));
        wal.append_delta(&DeltaRecord {
            epoch: i as u64,
            trace_index: i as u64,
            base_fp,
            new_fp,
            delta,
        })
        .expect("append");
        if i % 3 == 2 {
            wal.append_marker(&EpochMarker {
                epoch: i as u64,
                counters: FrontCounters::default(),
                cache: CacheStats::default(),
                shard_residency: vec![vec![base_fp], vec![], vec![new_fp], vec![]],
                quarantine: vec![],
            })
            .expect("marker");
        }
    }
    drop(wal);
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// A healthy snapshot as raw bytes.
fn healthy_snapshot() -> Vec<u8> {
    let g = gen::erdos_renyi(64, 256, 7);
    let fp = StructureFingerprint::of(&g);
    Snapshot {
        epoch: 5,
        counters: FrontCounters::default(),
        cache: CacheStats::default(),
        graphs: vec![(fp, g)],
        shard_residency: vec![vec![fp], vec![]],
        quarantine: vec![],
    }
    .to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a WAL anywhere yields either a clean replay (rolled
    /// back to the last marker the truncated file still contains) or a
    /// typed hard error for a mangled header — never a panic, and never
    /// a replayed record past the cut.
    #[test]
    fn wal_truncation_never_panics(n in 3usize..8, cut_frac in 0.0f64..1.0) {
        let bytes = healthy_wal(n);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let truncated = &bytes[..cut.min(bytes.len())];
        match Wal::replay_bytes(truncated) {
            Ok(replay) => {
                // Whatever survived must be a prefix of the healthy log.
                let full = Wal::replay_bytes(&bytes).expect("healthy log replays");
                prop_assert!(replay.records.len() <= full.records.len());
                for (got, want) in replay.records.iter().zip(&full.records) {
                    prop_assert_eq!(got, want);
                }
                if cut < bytes.len() {
                    prop_assert!(
                        replay.tail_defect.is_some() || replay.records.len() < full.records.len()
                            || replay.intact_len as usize <= cut
                    );
                }
            }
            Err(e) => {
                // Hard errors are reserved for an unreadable header.
                prop_assert!(cut < 12, "hard error past the header: {e}");
            }
        }
    }

    /// A single bit flip anywhere in the body is caught by a record
    /// checksum (replay stops, rolls back to the last marker before the
    /// flip) or by header validation — never a panic, never a corrupted
    /// record surfacing as data.
    #[test]
    fn wal_bit_flips_never_panic(n in 3usize..6, byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = healthy_wal(n);
        let idx = ((bytes.len() as f64) * byte_frac) as usize % bytes.len();
        let mut evil = bytes.clone();
        evil[idx] ^= 1 << bit;
        match Wal::replay_bytes(&evil) {
            Ok(replay) => {
                let full = Wal::replay_bytes(&bytes).expect("healthy log replays");
                // Every record replayed from the corrupt file must be
                // bit-identical to the healthy prefix: the flip either
                // stopped replay or lived past the last surviving record.
                prop_assert!(replay.records.len() <= full.records.len());
                for (got, want) in replay.records.iter().zip(&full.records) {
                    prop_assert_eq!(got, want);
                }
            }
            Err(_) => prop_assert!(idx < 12, "hard error must mean a mangled header"),
        }
    }

    /// Snapshot bytes: truncation and bit flips are typed errors (or,
    /// vanishingly rarely for a flip, a checksum collision that still
    /// decodes to a validated snapshot) — never a panic.
    #[test]
    fn snapshot_corruption_never_panics(cut_frac in 0.0f64..1.0, bit in 0u8..8, flip in 0u8..2) {
        let bytes = healthy_snapshot();
        if flip == 1 {
            let idx = ((bytes.len() as f64) * cut_frac) as usize % bytes.len();
            let mut evil = bytes.clone();
            evil[idx] ^= 1 << bit;
            if let Ok(s) = Snapshot::from_bytes(&evil) {
                // Only a same-checksum decode can get here; it must
                // still be a fully validated snapshot.
                for (fp, g) in &s.graphs {
                    prop_assert!(g.validate().is_ok());
                    prop_assert_eq!(*fp, StructureFingerprint::of(g));
                }
            }
        } else {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            if cut < bytes.len() {
                prop_assert!(Snapshot::from_bytes(&bytes[..cut]).is_err());
            }
        }
    }
}

#[test]
fn duplicated_records_replay_and_are_skipped_idempotently() {
    // Duplicate every delta record byte-for-byte by appending the same
    // record twice; replay must surface both copies (the WAL is honest
    // about its contents) and recovery's fingerprint gating skips the
    // second apply — asserted end-to-end in restart_equivalence.rs; here
    // we pin the format level: duplicates are not a decode error.
    let path = scratch("dup");
    let g = gen::erdos_renyi(48, 180, 99);
    let base_fp = StructureFingerprint::of(&g);
    let delta = free_cell_delta(&g);
    let new_fp = StructureFingerprint::of(&delta.apply(&g).expect("applies"));
    let rec = DeltaRecord {
        epoch: 0,
        trace_index: 3,
        base_fp,
        new_fp,
        delta,
    };
    let mut wal = Wal::create(&path).expect("create");
    wal.append_delta(&rec).expect("append");
    wal.append_delta(&rec).expect("append dup");
    wal.append_marker(&EpochMarker {
        epoch: 0,
        counters: FrontCounters::default(),
        cache: CacheStats::default(),
        shard_residency: vec![vec![]],
        quarantine: vec![],
    })
    .expect("marker");
    drop(wal);
    let replay = Wal::replay(&path).expect("replays");
    let _ = std::fs::remove_file(&path);
    let deltas: Vec<_> = replay.durable_deltas().collect();
    assert_eq!(deltas.len(), 2);
    assert_eq!(deltas[0], deltas[1]);
}

#[test]
fn stale_fingerprint_in_record_is_detected_at_recovery() {
    // A record whose logged post-apply fingerprint disagrees with its
    // delta decodes fine (the frame checksum covers what was written)
    // but must be rejected by recovery's per-link verification. The
    // format level can't catch it; pin that the mismatch is visible.
    let path = scratch("stalefp");
    let g = gen::erdos_renyi(48, 180, 123);
    let base_fp = StructureFingerprint::of(&g);
    let delta = free_cell_delta(&g);
    let lying_fp = StructureFingerprint {
        lo: 0xdead,
        hi: 0xbeef,
    };
    let mut wal = Wal::create(&path).expect("create");
    wal.append_delta(&DeltaRecord {
        epoch: 0,
        trace_index: 0,
        base_fp,
        new_fp: lying_fp,
        delta: delta.clone(),
    })
    .expect("append");
    wal.append_marker(&EpochMarker {
        epoch: 0,
        counters: FrontCounters::default(),
        cache: CacheStats::default(),
        shard_residency: vec![vec![]],
        quarantine: vec![],
    })
    .expect("marker");
    drop(wal);
    let replay = Wal::replay(&path).expect("replays");
    let _ = std::fs::remove_file(&path);
    let rec = replay.durable_deltas().next().expect("one record");
    match &replay.records[0] {
        WalRecord::Delta(d) => assert_eq!(d, rec),
        other => panic!("expected a delta record, got {other:?}"),
    }
    let truth = StructureFingerprint::of(&rec.delta.apply(&g).expect("applies"));
    assert_ne!(truth, rec.new_fp, "the log is lying and recovery can tell");
}
