//! Multithreaded hammer test for the plan caches (satellite of the
//! hc-check PR): drive `SharedPlanCache` from 1, 2 and 8 threads through
//! the facade's scoped spawn and assert the counter invariants hold
//! exactly —
//!
//! * `requests == hits + misses` (every lookup is counted once),
//! * `requests` equals the number of lookups issued,
//! * `rejected <= misses` (only misses can be rejected),
//! * quarantined fingerprints are **never** served from residency, and
//!   the poisoned `Arc` is never handed out again.
//!
//! The single-threaded `PlanCache` is hammered through the same workload
//! (serially) as the control: the sharded cache must agree with it on
//! every deterministic counter.

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, StructureFingerprint};
use hc_core::PlanSpec;
use hc_parallel::sync::thread;
use hc_parallel::sync::{AtomicU64, Ordering};
use hc_serve::{PlanCache, SharedPlanCache};

fn graphs(n: usize) -> Vec<Csr> {
    (0..n)
        .map(|i| gen::erdos_renyi(160, 700, 100 + i as u64))
        .collect()
}

/// Issue `rounds` passes over `gs` from `nthreads` workers, returning
/// the number of lookups issued and hits observed by the callers.
fn hammer(
    cache: &SharedPlanCache,
    gs: &[Csr],
    dev: &DeviceSpec,
    nthreads: usize,
    rounds: usize,
) -> (u64, u64) {
    let issued = AtomicU64::new_untracked(0);
    let observed_hits = AtomicU64::new_untracked(0);
    thread::scope(|s| {
        let (issued, observed_hits) = (&issued, &observed_hits);
        for t in 0..nthreads {
            s.spawn(move |_| {
                for _ in 0..rounds {
                    // Stagger start positions so threads collide on
                    // different fingerprints.
                    for i in 0..gs.len() {
                        let (plan, hit) = cache.get_or_prepare(&gs[(i + t) % gs.len()], dev);
                        assert!(plan.approx_bytes() > 0);
                        issued.fetch_add(1, Ordering::Relaxed);
                        if hit {
                            observed_hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    })
    .expect("hammer workers must not panic");
    (
        issued.load(Ordering::Relaxed),
        observed_hits.load(Ordering::Relaxed),
    )
}

#[test]
fn counters_stay_consistent_at_1_2_and_8_threads() {
    let dev = DeviceSpec::rtx3090();
    let gs = graphs(6);
    for nthreads in [1usize, 2, 8] {
        let cache = SharedPlanCache::new(u64::MAX / 16, PlanSpec::hybrid(), 4);
        let rounds = 4;
        let (issued, observed_hits) = hammer(&cache, &gs, &dev, nthreads, rounds);
        let s = cache.stats();
        assert_eq!(issued, (nthreads * rounds * gs.len()) as u64);
        assert_eq!(
            s.requests, issued,
            "every lookup counted at {nthreads} threads"
        );
        assert_eq!(
            s.hits + s.misses,
            s.requests,
            "hits+misses==requests at {nthreads} threads: {s:?}"
        );
        assert_eq!(s.hits, observed_hits, "cache hits match caller view");
        assert!(s.rejected <= s.misses, "{s:?}");
        assert_eq!(s.rejected, 0, "budget is effectively unbounded: {s:?}");
        // Every distinct structure missed at least once (first toucher)
        // and at most once per thread (racers preparing concurrently).
        assert!(s.misses >= gs.len() as u64, "{s:?}");
        assert!(s.misses <= (gs.len() * nthreads) as u64, "{s:?}");
        assert_eq!(cache.len(), gs.len());
    }
}

#[test]
fn single_thread_matches_unsharded_control_exactly() {
    let dev = DeviceSpec::rtx3090();
    let gs = graphs(5);
    let shared = SharedPlanCache::new(u64::MAX / 16, PlanSpec::hybrid(), 4);
    let mut control = PlanCache::new(u64::MAX / 16, PlanSpec::hybrid());
    for round in 0..3 {
        for g in &gs {
            let (_, hit_s) = shared.get_or_prepare(g, &dev);
            let (_, hit_c) = control.get_or_prepare(g, &dev);
            assert_eq!(hit_s, hit_c, "round {round}");
        }
    }
    let s = shared.stats();
    let c = control.stats();
    assert_eq!(
        (s.requests, s.hits, s.misses),
        (c.requests, c.hits, c.misses)
    );
    assert_eq!(s.rejected, c.rejected);
    assert_eq!(shared.len(), control.len());
}

#[test]
fn quarantined_fingerprints_are_never_served_under_contention() {
    let dev = DeviceSpec::rtx3090();
    let gs = graphs(4);
    let cache = Arc::new(SharedPlanCache::new(u64::MAX / 16, PlanSpec::hybrid(), 4));
    // Warm the cache, then quarantine the first two structures.
    let mut poisoned = Vec::new();
    for g in &gs {
        poisoned.push(cache.get_or_prepare(g, &dev).0);
    }
    let bad: Vec<StructureFingerprint> = gs[..2].iter().map(StructureFingerprint::of).collect();
    assert!(cache.quarantine(bad[0]));
    assert!(cache.quarantine(bad[1]));

    let serves = AtomicU64::new_untracked(0);
    thread::scope(|s| {
        let (cache, gs, bad, poisoned, serves, dev) = (&cache, &gs, &bad, &poisoned, &serves, &dev);
        for t in 0..8usize {
            s.spawn(move |_| {
                for r in 0..3usize {
                    for g in gs {
                        let fp = StructureFingerprint::of(g);
                        let (plan, hit) = cache.get_or_prepare(g, dev);
                        serves.fetch_add(1, Ordering::Relaxed);
                        if bad.contains(&fp) {
                            assert!(!hit, "quarantined fp served from cache (t{t} r{r})");
                            for p in &poisoned[..2] {
                                assert!(
                                    !Arc::ptr_eq(&plan, p),
                                    "poisoned plan re-served (t{t} r{r})"
                                );
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("workers must not panic");

    let s = cache.stats();
    assert_eq!(serves.load(Ordering::Relaxed), 8 * 3 * 4);
    assert_eq!(s.quarantined, 2);
    // Every request for a quarantined structure after the quarantine
    // call is a quarantine miss: 8 threads × 3 rounds × 2 structures.
    assert_eq!(s.quarantine_misses, 8 * 3 * 2);
    assert!(cache.is_quarantined(bad[0]) && cache.is_quarantined(bad[1]));
    // Healthy structures stayed resident throughout.
    assert_eq!(cache.len(), 2);
}
