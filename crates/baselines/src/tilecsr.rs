//! Tile-CSR-style kernel (Xue et al., ICCD'23) — the related-work system
//! the paper cites as "an unstructured SpMM kernel using Tensor cores,
//! introducing a format named Tile-CSR to reduce the zero elements in
//! submatrices traversed by Tensor cores. However, this kernel only
//! supports half precision."
//!
//! Tile-CSR stores a CSR *of tiles*: per 16-row band, the non-empty 16×16
//! half-precision tiles with their packed entries. Compared with the
//! condensed row window, the tile grid is laid over the **original** column
//! space, so a scattered window produces many barely-filled tiles — the
//! reduced-precision traffic wins on dense graphs and loses badly on
//! scattered ones.

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec, Precision};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::{SpmmKernel, SpmmResult};

/// Tile edge of the half-precision WMMA shape (m16n16k16).
const TILE: usize = 16;

/// Tile-CSR-style half-precision Tensor-core kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct TileCsrSpmm;

impl TileCsrSpmm {
    /// Non-empty 16×16 tiles and nnz for one 16-row band over the original
    /// column grid.
    fn band_tiles(a: &Csr, start: usize, rows: usize) -> (usize, usize) {
        let mut tiles = std::collections::HashSet::new();
        let mut nnz = 0usize;
        for r in start..start + rows {
            for &c in a.row_cols(r) {
                tiles.insert(c as usize / TILE);
                nnz += 1;
            }
        }
        (tiles.len(), nnz)
    }

    fn band_cost(tiles: usize, nnz: usize, rows: usize, dim: usize, dev: &DeviceSpec) -> BlockCost {
        let mut b = BlockCost {
            warps: 8,
            ..Default::default()
        };
        if tiles == 0 {
            return b;
        }
        let eb = Precision::Fp16.storage_bytes();
        let dim_chunks = dim.div_ceil(16);
        // Tile descriptors + packed entries (2-byte positions + half
        // values), coalesced.
        b.dram.transactions += coalesced_transactions(
            nnz as u64 * (2 + eb) + tiles as u64 * 8,
            dev.transaction_bytes,
        );
        b.dram.bytes_loaded += nnz as u64 * (2 + eb) + tiles as u64 * 8;
        b.shared.stores += (nnz as u64).div_ceil(dev.warp_size as u64);
        // X fragments: a full 16-row strip of X per tile per dim chunk —
        // tiles sit on the original grid, so there is no condensing and
        // every tile pays the full fragment.
        let fragments = (tiles * dim_chunks) as u64;
        b.dram.transactions += fragments * TILE as u64;
        b.dram.bytes_loaded += (tiles * TILE * dim) as u64 * eb;
        b.shared.stores += fragments * (TILE * 16) as u64 * eb / (dev.warp_size as u64 * 4);
        // One m16n16k16 WMMA per fragment.
        b.wmma_issues = fragments;
        b.shared.loads += fragments * 2;
        // FP32 accumulators stored once.
        b.dram.bytes_stored += (rows * dim) as u64 * 4;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        b
    }
}

impl SpmmKernel for TileCsrSpmm {
    fn name(&self) -> &'static str {
        "Tile-CSR(half)"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        let run = self.spmm_run(a, x, dev);
        // Half-precision operands, FP32 accumulate.
        let p = Precision::Fp16;
        let mut z = DenseMatrix::zeros(a.nrows, x.cols);
        for r in 0..a.nrows {
            let (s, e) = a.row_range(r);
            for i in s..e {
                let v = p.quantize(a.vals[i]);
                let xrow = x.row(a.col_idx[i] as usize);
                let zrow = z.row_mut(r);
                for (o, &xv) in zrow.iter_mut().zip(xrow) {
                    *o += v * p.quantize(xv);
                }
            }
        }
        SpmmResult { z, run }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let mut blocks = Vec::with_capacity(a.nrows.div_ceil(TILE));
        for start in (0..a.nrows).step_by(TILE) {
            let rows = TILE.min(a.nrows - start);
            let (tiles, nnz) = Self::band_tiles(a, start, rows);
            if nnz == 0 {
                continue;
            }
            blocks.push(Self::band_cost(tiles, nnz, rows, x.cols, dev));
        }
        dev.execute(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;
    use hc_core::HcSpmm;

    #[test]
    fn numerics_match_at_half_tolerance() {
        let a = gen::community(256, 1500, 8, 0.9, 1);
        let x = DenseMatrix::random_features(256, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = TileCsrSpmm.spmm(&a, &x, &dev);
        assert!(a.spmm_reference(&x).max_abs_diff(&r.z) < 0.1);
    }

    #[test]
    fn uncondensed_tiles_lose_on_scattered_graphs() {
        // Scattering multiplies Tile-CSR's non-empty tile count; the
        // condensed hybrid barely notices at the tile level.
        let dev = DeviceSpec::rtx3090();
        let clean = gen::molecules(2_048, 5_000, 3);
        let scattered = gen::scatter_relabel(&clean, 4);
        let x = DenseMatrix::random_features(2_048, 64, 5);
        let t_clean = TileCsrSpmm.spmm(&clean, &x, &dev).run.time_ms;
        let t_scattered = TileCsrSpmm.spmm(&scattered, &x, &dev).run.time_ms;
        assert!(
            t_scattered > 1.5 * t_clean,
            "scatter should hurt Tile-CSR: {t_clean} → {t_scattered}"
        );
        let hc = HcSpmm::with_precision(Precision::Fp16)
            .spmm(&scattered, &x, &dev)
            .run
            .time_ms;
        assert!(
            hc < t_scattered,
            "HC(half) {hc} should beat Tile-CSR {t_scattered}"
        );
    }

    #[test]
    fn empty_bands_are_skipped() {
        let a = Csr::empty(64, 64);
        let x = DenseMatrix::random_features(64, 16, 1);
        let dev = DeviceSpec::rtx3090();
        let r = TileCsrSpmm.spmm(&a, &x, &dev);
        assert_eq!(r.run.profile.blocks, 0);
        assert_eq!(r.z, DenseMatrix::zeros(64, 16));
    }
}
