//! # baselines — comparator SpMM kernels (§VI-A)
//!
//! One kernel per system the paper compares against, each implementing that
//! system's published algorithmic structure on the shared `gpu-sim`
//! substrate so its characteristic strengths and weaknesses emerge from the
//! algorithm rather than tuned constants:
//!
//! * [`CusparseSpmm`] — cuSPARSE's CSR row-split kernel: warp-per-row, no
//!   tiling for dense-operand reuse, so every non-zero pays full gather
//!   traffic. Collapses on graphs with scattered neighbour IDs (AZ, DP).
//! * [`SputnikSpmm`] — Gale et al.'s 1-D tiling with subwarp row mapping and
//!   vector memory accesses; captures reuse inside a row tile.
//! * [`GeSpmm`] — Huang et al.'s coalesced-row-caching + coarse warp
//!   merging; caches CSR entries in shared memory, reuse across merged rows.
//! * [`TcGnnSpmm`] — Wang et al.'s all-Tensor-core design with SGT column
//!   condensing; CUDA cores only load data. Unoptimized fragment loading.
//! * [`DtcSpmm`] — Fan et al.'s ME-TCF Tensor-core kernel with efficient
//!   loading (the strongest Tensor-only baseline).
//! * [`cpu_spmm`] — the PyTorch-CPU reference point (§VI-B1's 183.77×).
//!
//! All of them return bit-exact (CUDA paths) or precision-faithful (Tensor
//! paths) numerics, so every comparison in the bench harness is validated
//! against the reference multiply.

#![warn(missing_docs)]

pub mod cpu;
pub mod cusparse;
pub mod dtc;
pub mod gespmm;
pub mod sputnik;
pub mod tcgnn;
pub mod tilecsr;

pub use cpu::{cpu_spmm, cpu_spmm_time_ms, CpuSpmmReport};
pub use cusparse::CusparseSpmm;
pub use dtc::DtcSpmm;
pub use gespmm::GeSpmm;
pub use sputnik::{SputnikHalfSpmm, SputnikSpmm};
pub use tcgnn::TcGnnSpmm;
pub use tilecsr::TileCsrSpmm;

use hc_core::SpmmKernel;

/// All five GPU baselines plus HC-SpMM, in the order Fig. 10 plots them.
pub fn all_kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(CusparseSpmm),
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
        Box::new(hc_core::HcSpmm::default()),
    ]
}
