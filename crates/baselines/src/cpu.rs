//! PyTorch-CPU reference point (§VI-B1's "183.77× average speedup").
//!
//! `torch.sparse.mm` on a workstation CPU is memory-bound: each non-zero
//! streams its CSR entry and gathers a dense row, with no GPU-grade
//! bandwidth behind it. We model a 10-core desktop CPU (the paper's
//! i9-10900K) with a modeled sustained 40 GB/s of effective random-access
//! bandwidth and 150 GFLOP/s of sparse-kernel throughput, and compute the
//! numerics for real.

use graph_sparse::{Csr, DenseMatrix};

/// Modeled sustained DRAM bandwidth for sparse gathers (bytes/s).
const CPU_BW: f64 = 40e9;
/// Modeled sustained FP32 throughput in sparse kernels (FLOP/s).
const CPU_FLOPS: f64 = 150e9;

/// Result of the CPU SpMM model.
#[derive(Debug, Clone)]
pub struct CpuSpmmReport {
    /// Numerical result.
    pub z: DenseMatrix,
    /// Modeled execution time in milliseconds.
    pub time_ms: f64,
}

/// SpMM on the CPU: real numerics, roofline-modeled time.
pub fn cpu_spmm(a: &Csr, x: &DenseMatrix) -> CpuSpmmReport {
    CpuSpmmReport {
        z: a.spmm_reference(x),
        time_ms: cpu_spmm_time_ms(a, x),
    }
}

/// The roofline-modeled CPU time alone: the model is a pure function of the
/// matrix shape and nnz, so timing experiments skip the reference multiply.
pub fn cpu_spmm_time_ms(a: &Csr, x: &DenseMatrix) -> f64 {
    let flops = 2.0 * a.nnz() as f64 * x.cols as f64;
    // Per nnz: 8 B CSR entry + a gathered dense row (cache-hostile, pay a
    // 64-byte line per 16 floats) + its share of the output stream.
    let line_per_row = (x.cols as f64 * 4.0 / 64.0).ceil() * 64.0;
    let bytes = a.nnz() as f64 * (8.0 + line_per_row) + (a.nrows * x.cols) as f64 * 4.0;
    // Framework dispatch overhead: a PyTorch sparse-op call costs ~10 µs of
    // Python/ATen plumbing before any arithmetic runs.
    const DISPATCH_S: f64 = 10e-6;
    let time_s = (flops / CPU_FLOPS).max(bytes / CPU_BW) + DISPATCH_S;
    time_s * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use graph_sparse::gen;
    use hc_core::{HcSpmm, SpmmKernel};

    #[test]
    fn numerics_are_reference() {
        let a = gen::erdos_renyi(100, 400, 1);
        let x = DenseMatrix::random_features(100, 16, 2);
        assert_eq!(cpu_spmm(&a, &x).z, a.spmm_reference(&x));
    }

    #[test]
    fn gpu_speedup_is_two_orders_of_magnitude_on_large_graphs() {
        // §VI-B1: 183.77× average over the datasets. Order of magnitude is
        // what we pin.
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(16_384, 120_000, 512, 0.85, 3);
        let x = DenseMatrix::random_features(16_384, 64, 4);
        let cpu = cpu_spmm(&a, &x).time_ms;
        let gpu = HcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        let speedup = cpu / gpu;
        assert!(
            (20.0..2000.0).contains(&speedup),
            "GPU speedup {speedup} outside expected band"
        );
    }

    #[test]
    fn time_scales_with_work() {
        let a1 = gen::erdos_renyi(512, 2000, 5);
        let a2 = gen::erdos_renyi(512, 8000, 5);
        let x = DenseMatrix::random_features(512, 32, 6);
        assert!(cpu_spmm(&a2, &x).time_ms > cpu_spmm(&a1, &x).time_ms);
    }
}
