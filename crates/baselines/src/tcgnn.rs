//! TC-GNN-style kernel (Wang, Feng, Wang, Huang, Ding — USENIX ATC'23).
//!
//! TC-GNN processes *every* row window on Tensor cores after SGT column
//! condensing; CUDA cores participate only as data movers. That makes it
//! excellent on dense windows and wasteful on the sparse majority of
//! real-graph windows (the paper's motivation: TC-GNN's preprocessed
//! matrices are still ~90.9 % sparse on average). Its fragment loading is
//! the uncooperative variant HC-SpMM's Algorithm 4 improves on.
//!
//! Its SGT preprocessing builds the condensed layout with per-window
//! scans of the edge list — the paper's Table XI measures it ~36× more
//! expensive than HC-SpMM's DTC-derived preprocessing kernel.

use gpu_sim::{DeviceSpec, KernelRun, Precision};
use graph_sparse::{Csr, DenseMatrix, RowWindowPartition};
use hc_core::{SpmmKernel, SpmmResult, TensorSpmm};

/// TC-GNN-style all-Tensor kernel.
#[derive(Debug, Clone, Copy)]
pub struct TcGnnSpmm {
    /// Precision (TF32 in the paper; Appendix B evaluates half, whose
    /// 16×16×16 tile requirement wastes more zero columns).
    pub precision: Precision,
}

impl Default for TcGnnSpmm {
    fn default() -> Self {
        TcGnnSpmm {
            precision: Precision::Tf32,
        }
    }
}

impl TcGnnSpmm {
    /// The inner per-window kernel: unoptimized fragment loading.
    fn inner(&self) -> TensorSpmm {
        // TC-GNN ships neither compressed tile metadata nor the cp.async
        // pipeline — model its published kernel, not HC's upgrades.
        TensorSpmm {
            precision: self.precision,
            optimized_loading: false,
            compressed_meta: false,
            pipelined: false,
        }
    }

    /// SGT preprocessing cost. TC-GNN's released SGT (sparse-graph
    /// translation) runs on the *host*: per window it scans the edge list
    /// and builds the condensed column map with Python-driven set
    /// operations. DTC-SpMM and this paper's Table XI measure it one to two
    /// orders of magnitude slower than the GPU radix-sort pipeline; we model
    /// the host pass at a generous 25 M edges/s plus one PCIe round trip of
    /// the rebuilt index arrays.
    pub fn preprocess_run(&self, a: &Csr, dev: &DeviceSpec) -> KernelRun {
        const HOST_EDGES_PER_SEC: f64 = 25e6;
        const PCIE_GBS: f64 = 16.0;
        let _ = RowWindowPartition::build(a); // the structure SGT produces
        let host_s = a.nnz() as f64 / HOST_EDGES_PER_SEC;
        let pcie_s = (a.nnz() as f64 * 8.0) / (PCIE_GBS * 1e9);
        KernelRun {
            time_ms: (host_s + pcie_s) * 1e3 + dev.launch_overhead_us * 1e-3,
            ..KernelRun::default()
        }
    }
}

impl SpmmKernel for TcGnnSpmm {
    fn name(&self) -> &'static str {
        "TC-GNN"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        self.inner().spmm(a, x, dev)
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> KernelRun {
        self.inner().spmm_run(a, x, dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;
    use hc_core::HcSpmm;

    #[test]
    fn numerics_match_at_tf32_tolerance() {
        let a = gen::erdos_renyi(256, 1000, 1);
        let x = DenseMatrix::random_features(256, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = TcGnnSpmm::default().spmm(&a, &x, &dev);
        assert!(a.spmm_reference(&x).max_abs_diff(&r.z) < 0.05);
    }

    #[test]
    fn loses_badly_on_sparse_wide_windows() {
        // PM-like: sparse citation graph — the paper's 6.76× worst case.
        let dev = DeviceSpec::rtx3090();
        let a = gen::barabasi_albert(2048, 2, 3);
        let x = DenseMatrix::random_features(2048, 32, 4);
        let tc = TcGnnSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        let hc = HcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        assert!(tc > 1.3 * hc, "tc-gnn {tc} should lose ≥1.3× to hc {hc}");
    }

    #[test]
    fn preprocessing_much_slower_than_hc() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(4096, 30_000, 128, 0.85, 5);
        let tc = TcGnnSpmm::default().preprocess_run(&a, &dev).time_ms;
        let hc = HcSpmm::default().preprocess(&a, &dev).run.time_ms;
        let ratio = tc / hc;
        assert!(
            ratio > 5.0,
            "TC-GNN preprocessing should be ≫ HC's: ratio {ratio}"
        );
    }
}
