//! GE-SpMM-style kernel (Huang, Dai, Wang, Yang — SC'20).
//!
//! GE-SpMM's two techniques are Coalesced Row Caching — warps cooperatively
//! stage CSR column indices in shared memory, exactly the optimization
//! HC-SpMM adopts — and Coarse-grained Warp Merging, where one warp computes
//! several adjacent rows to reuse the cached indices. The merge group is
//! small (2–4 rows), so dense-operand reuse is captured across merged rows
//! only, not across the whole 16-row window; and like Sputnik the dense
//! dimension is processed in padded 32-wide slices.

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::{SpmmKernel, SpmmResult};

/// GE-SpMM-style CRC + CWM kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeSpmm;

/// Rows merged per warp (the paper's CWM factor).
const MERGE: usize = 4;

impl GeSpmm {
    fn group_cost(
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockCost {
        let mut b = BlockCost {
            warps: rows.div_ceil(MERGE).max(1) as u32,
            ..Default::default()
        };
        let slices = dim.div_ceil(32);
        b.cuda_fma_issues = (nnz * slices) as u64;
        // CRC: one coalesced CSR load + shared broadcasts.
        b.dram.transactions += coalesced_transactions(nnz as u64 * 8, dev.transaction_bytes);
        b.dram.bytes_loaded += nnz as u64 * 8;
        b.shared.stores += (nnz as u64).div_ceil(dev.warp_size as u64) * 2;
        b.shared.loads += (nnz * slices) as u64;
        // Dense gathers: reuse only within a merge group → DRAM bytes per
        // distinct column *of each group* (the caller passes the summed
        // group-distinct count), padded slices.
        b.dram.transactions += (nnz * slices) as u64;
        b.dram.bytes_loaded += (distinct_cols * slices * 32) as u64 * 4;
        b.dram.bytes_stored += (rows * dim) as u64 * 4;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        b
    }
}

impl SpmmKernel for GeSpmm {
    fn name(&self) -> &'static str {
        "GE-SpMM"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        SpmmResult {
            z: a.spmm_reference(x),
            run: self.spmm_run(a, x, dev),
        }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let mut blocks = Vec::with_capacity(a.nrows.div_ceil(16));
        let mut scratch: Vec<u32> = Vec::new();
        for start in (0..a.nrows).step_by(16) {
            let rows = 16.min(a.nrows - start);
            let lo = a.row_ptr[start] as usize;
            let hi = a.row_ptr[start + rows] as usize;
            if hi == lo {
                continue;
            }
            // Distinct columns summed over 4-row merge groups.
            let mut group_distinct = 0usize;
            for g in (start..start + rows).step_by(MERGE) {
                let ge = (g + MERGE).min(start + rows);
                scratch.clear();
                scratch
                    .extend_from_slice(&a.col_idx[a.row_ptr[g] as usize..a.row_ptr[ge] as usize]);
                scratch.sort_unstable();
                scratch.dedup();
                group_distinct += scratch.len();
            }
            blocks.push(Self::group_cost(hi - lo, group_distinct, rows, x.cols, dev));
        }
        dev.execute(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cusparse::CusparseSpmm;
    use graph_sparse::gen;
    use hc_core::{CudaSpmm, SpmmKernel};

    #[test]
    fn exact_numerics() {
        let a = gen::community(300, 1500, 10, 0.9, 1);
        let x = DenseMatrix::random_features(300, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = GeSpmm.spmm(&a, &x, &dev);
        assert_eq!(r.z, a.spmm_reference(&x));
    }

    #[test]
    fn between_cusparse_and_hc_cuda() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(2048, 16_000, 64, 0.85, 3);
        let x = DenseMatrix::random_features(2048, 32, 4);
        let ge = GeSpmm.spmm(&a, &x, &dev).run.time_ms;
        let cu = CusparseSpmm.spmm(&a, &x, &dev).run.time_ms;
        let hc = CudaSpmm::optimized().spmm(&a, &x, &dev).run.time_ms;
        assert!(ge < cu, "ge {ge} !< cusparse {cu}");
        assert!(hc <= ge * 1.05, "hc-cuda {hc} should not lose to ge {ge}");
    }

    #[test]
    fn merge_group_reuse_is_partial() {
        // On a community graph the 16-row window shares most columns, so
        // HC's window-level dedup loads fewer DRAM bytes than GE's
        // group-level dedup.
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(1024, 10_000, 32, 0.95, 5);
        let x = DenseMatrix::random_features(1024, 32, 6);
        let ge = GeSpmm.spmm(&a, &x, &dev);
        let hc = CudaSpmm::optimized().spmm(&a, &x, &dev);
        assert!(ge.run.profile.dram_bytes_loaded > hc.run.profile.dram_bytes_loaded);
    }
}
