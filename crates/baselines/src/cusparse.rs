//! cuSPARSE-style CSR SpMM (`cusparseSpMM` with `CUSPARSE_SPMM_CSR_ALG2`).
//!
//! The library kernel assigns a warp per sparse row and iterates the CSR
//! entries, gathering dense rows directly from global memory. There is no
//! window tiling, so reuse of the dense operand between nearby rows is left
//! entirely to the hardware caches — and with graph adjacency the gathered
//! rows are too scattered for that to work: every non-zero pays its full
//! gather traffic. Gale et al. observe the kernel is only competitive above
//! ~98 % sparsity; the paper's Fig. 10 shows it losing 1.85–19.56× to
//! HC-SpMM, worst on the scattered-ID graphs AZ and DP.

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::{SpmmKernel, SpmmResult};

/// cuSPARSE-style row-split CSR kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CusparseSpmm;

/// Column-index gap beyond which a gather leaves the open DRAM row / TLB
/// reach of its predecessor (≈ a few KB of the dense operand apart).
const LOCALITY_GAP: u32 = 64;

impl CusparseSpmm {
    /// Count the gathers whose column index jumps more than [`LOCALITY_GAP`]
    /// from the previous gather in the same row — the accesses that expose
    /// full DRAM activate/page-walk latency in an untiled kernel.
    fn far_gathers(a: &Csr, start: usize, rows: usize) -> usize {
        let mut far = 0;
        for r in start..start + rows {
            let cols = a.row_cols(r);
            for w in cols.windows(2) {
                if w[1] - w[0] > LOCALITY_GAP {
                    far += 1;
                }
            }
        }
        far
    }

    /// Block cost for a 16-row slab (the scheduler granule; cuSPARSE maps
    /// rows to warps within CTAs of 512 threads).
    fn slab_cost(nnz: usize, far: usize, rows: usize, dim: usize, dev: &DeviceSpec) -> BlockCost {
        let mut b = BlockCost {
            warps: rows.clamp(1, 16) as u32,
            ..Default::default()
        };
        let slices = dim.div_ceil(32);
        // One warp-wide FMA issue per nnz per padded 32-wide slice.
        b.cuda_fma_issues = (nnz * slices) as u64;
        // CSR entries: per-iteration broadcast reads from global memory
        // (colIdx + val) — no shared-memory staging.
        b.dram.transactions += (nnz * slices) as u64 * 2;
        b.dram.bytes_loaded += (nnz * slices) as u64 * 8;
        // Dense gathers: one transaction per nnz per slice, and — the
        // defining difference from tiled kernels — full DRAM traffic per
        // access: no dedup of repeated rows.
        let slice_bytes = |s: usize| -> u64 {
            let w = (dim - s * 32).min(32);
            (w * 4) as u64
        };
        for s in 0..slices {
            b.dram.transactions += nnz as u64;
            b.dram.bytes_loaded += nnz as u64 * slice_bytes(s).max(32);
        }
        // Scattered adjacency: the library kernel has neither tiling nor a
        // sorted gather stream, so each far jump leaves the open DRAM row
        // and TLB reach and exposes activate/page-walk latency with almost
        // no memory-level parallelism behind it (one row per warp, low
        // degree ⇒ few loads in flight). Tiled kernels gather each window's
        // distinct columns once, in sorted order, with block-wide
        // concurrency, which keeps this term off their bill. Charged as
        // extra unhidable transactions plus the wasted activation sector.
        let slices = dim.div_ceil(32) as u64;
        b.dram.transactions += far as u64 * slices * 8;
        b.dram.bytes_loaded += far as u64 * slices * 128;

        // Output store, coalesced.
        b.dram.bytes_stored += (rows * dim) as u64 * 4;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        b
    }

    fn blocks(a: &Csr, dim: usize, dev: &DeviceSpec) -> Vec<BlockCost> {
        let mut blocks = Vec::with_capacity(a.nrows.div_ceil(16));
        for start in (0..a.nrows).step_by(16) {
            let rows = 16.min(a.nrows - start);
            let nnz = (a.row_ptr[start + rows] - a.row_ptr[start]) as usize;
            if nnz == 0 {
                continue;
            }
            let far = Self::far_gathers(a, start, rows);
            blocks.push(Self::slab_cost(nnz, far, rows, dim, dev));
        }
        blocks
    }
}

impl SpmmKernel for CusparseSpmm {
    fn name(&self) -> &'static str {
        "cuSPARSE"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        SpmmResult {
            z: a.spmm_reference(x),
            run: self.spmm_run(a, x, dev),
        }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        dev.execute(&Self::blocks(a, x.cols, dev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;
    use hc_core::HcSpmm;

    #[test]
    fn exact_numerics() {
        let a = gen::erdos_renyi(128, 500, 1);
        let x = DenseMatrix::random_features(128, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = CusparseSpmm.spmm(&a, &x, &dev);
        assert_eq!(r.z, a.spmm_reference(&x));
    }

    #[test]
    fn pays_full_gather_traffic() {
        // cuSPARSE loads more DRAM bytes than HC-SpMM on a reuse-heavy graph.
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(1024, 8000, 32, 0.9, 3);
        let x = DenseMatrix::random_features(1024, 32, 4);
        let cu = CusparseSpmm.spmm(&a, &x, &dev);
        let hc = HcSpmm::default().spmm(&a, &x, &dev);
        assert!(cu.run.profile.dram_bytes_loaded > hc.run.profile.dram_bytes_loaded);
        assert!(cu.run.time_ms > hc.run.time_ms);
    }

    #[test]
    fn scattered_ids_do_not_change_cusparse_much_but_locality_helps_others() {
        // cuSPARSE's traffic model is insensitive to ID locality (it never
        // reuses), so scattering hurts it less than it hurts nothing at all;
        // the relevant effect (scatter hurts HC less than cuSPARSE overall)
        // is covered by the integration suite. Here: sanity that time grows
        // with edges.
        let dev = DeviceSpec::rtx3090();
        let x = DenseMatrix::random_features(512, 32, 5);
        let small = CusparseSpmm.spmm(&gen::erdos_renyi(512, 1000, 6), &x, &dev);
        let large = CusparseSpmm.spmm(&gen::erdos_renyi(512, 4000, 6), &x, &dev);
        assert!(large.run.time_ms > small.run.time_ms);
    }
}
