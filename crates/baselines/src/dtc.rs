//! DTC-SpMM-style kernel (Fan, Wang, Chu — ASPLOS'24).
//!
//! The strongest Tensor-core-only baseline: the ME-TCF format removes
//! format-traversal overhead and its fragment loading is as efficient as
//! HC-SpMM's Algorithm 4. The kernel still runs *every* window on Tensor
//! cores, so on sparse windows it wastes MMA throughput where HC-SpMM
//! switches to CUDA cores — Fig. 10 shows HC-SpMM between 0.99× (a tie,
//! on graphs whose windows are nearly all Tensor-suited) and 3.03× faster.

use gpu_sim::{DeviceSpec, KernelRun, Precision};
use graph_sparse::{Csr, DenseMatrix, MeTcf};
use hc_core::{HcSpmm, SpmmKernel, SpmmResult, TensorSpmm};

/// DTC-SpMM-style all-Tensor kernel with ME-TCF-grade loading.
#[derive(Debug, Clone, Copy)]
pub struct DtcSpmm {
    /// Input precision.
    pub precision: Precision,
}

impl Default for DtcSpmm {
    fn default() -> Self {
        DtcSpmm {
            precision: Precision::Tf32,
        }
    }
}

impl DtcSpmm {
    fn inner(&self) -> TensorSpmm {
        // DTC's ME-TCF has its own (uncompressed) descriptors and stages X
        // synchronously — keep the competitor's published cost model.
        TensorSpmm {
            precision: self.precision,
            optimized_loading: true,
            compressed_meta: false,
            pipelined: false,
        }
    }

    /// ME-TCF construction: the same GPU radix-sort pipeline HC-SpMM
    /// adopts, plus the extra passes that emit ME-TCF's block descriptors
    /// (Table XI measures DTC preprocessing at ≈1.3× HC-SpMM's).
    pub fn preprocess_run(&self, a: &Csr, dev: &DeviceSpec) -> KernelRun {
        // HC-SpMM strips the ME-TCF descriptor emission from the pipeline;
        // reconstruct DTC's cost as the shared pipeline + descriptor pass
        // (one extra read/write sweep of the sorted edges).
        let base = HcSpmm::default().preprocess(a, dev).run;
        let extra_bytes = a.nnz() as u64 * 16;
        let extra_s = extra_bytes as f64 / (dev.dram_bandwidth_gbs * 1e9) * 2.0;
        KernelRun {
            time_ms: base.time_ms + extra_s * 1e3,
            ..base
        }
    }
}

impl SpmmKernel for DtcSpmm {
    fn name(&self) -> &'static str {
        "DTC-SpMM"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        // Timing comes from the shared Tensor-core cost model; the numerics
        // are computed through the real ME-TCF structure (and quantized at
        // the kernel's precision), so the format itself is exercised.
        let run = self.spmm_run(a, x, dev);
        let m = MeTcf::from_csr(a);
        let p = self.precision;
        let xq = DenseMatrix {
            rows: x.rows,
            cols: x.cols,
            data: x.data.iter().map(|&v| p.quantize(v)).collect(),
        };
        let mut aq = m;
        aq.entry_vals.iter_mut().for_each(|v| *v = p.quantize(*v));
        SpmmResult {
            z: aq.spmm_reference(&xq),
            run,
        }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> KernelRun {
        self.inner().spmm_run(a, x, dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcgnn::TcGnnSpmm;
    use graph_sparse::gen;

    #[test]
    fn beats_tcgnn_everywhere() {
        let dev = DeviceSpec::rtx3090();
        for seed in [1, 2] {
            let a = gen::community(1024, 8000, 32, 0.9, seed);
            let x = DenseMatrix::random_features(1024, 32, seed);
            let dtc = DtcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
            let tc = TcGnnSpmm::default().spmm(&a, &x, &dev).run.time_ms;
            assert!(dtc < tc, "dtc {dtc} !< tcgnn {tc}");
        }
    }

    #[test]
    fn hc_never_loses_more_than_a_tie() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(2048, 20_000, 32, 0.95, 4);
        let x = DenseMatrix::random_features(2048, 32, 5);
        let dtc = DtcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        let hc = HcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
        assert!(hc <= dtc * 1.02, "hc {hc} vs dtc {dtc}");
    }

    #[test]
    fn preprocessing_slightly_above_hc() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(4096, 30_000, 128, 0.85, 5);
        let dtc = DtcSpmm::default().preprocess_run(&a, &dev).time_ms;
        let hc = HcSpmm::default().preprocess(&a, &dev).run.time_ms;
        let ratio = dtc / hc;
        assert!(
            (1.0..2.5).contains(&ratio),
            "DTC preprocessing should be ~1.3× HC's: {ratio}"
        );
    }
}
