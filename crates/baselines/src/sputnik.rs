//! Sputnik-style SpMM (Gale, Zaharia, Young, Elsen — SC'20).
//!
//! Sputnik's CSR kernel uses 1-D tiling: a thread block owns a contiguous
//! strip of sparse rows, subwarp groups map to rows for load balance, and
//! all memory accesses are vectorized (`float4`). The row strip gives the
//! dense operand actual temporal reuse in L1 — unlike cuSPARSE — which is
//! why it is the state-of-the-art CUDA-core baseline. It lacks HC-SpMM's
//! shared-memory CSR staging (edges stream through registers with per-
//! iteration L1 broadcasts) and its adaptive tail handling (the dense
//! dimension is processed in padded 32-wide slices).

use gpu_sim::{coalesced_transactions, BlockCost, DeviceSpec};
use graph_sparse::{Csr, DenseMatrix, RowWindowPartition};
use hc_core::{SpmmKernel, SpmmResult};

/// Sputnik-style 1-D tiled CSR kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct SputnikSpmm;

/// Sputnik's half-precision variant (Appendix B): the same structure with
/// all operand traffic halved — Sputnik ships kernels specifically
/// vectorized for fp16, which is why it more than doubles its own fp32
/// throughput there.
#[derive(Debug, Clone, Copy, Default)]
pub struct SputnikHalfSpmm;

impl SpmmKernel for SputnikHalfSpmm {
    fn name(&self) -> &'static str {
        "Sputnik(half)"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        let run = self.spmm_run(a, x, dev);
        // Numerics at fp16 operand precision, fp32 accumulate.
        let p = gpu_sim::Precision::Fp16;
        let mut z = graph_sparse::DenseMatrix::zeros(a.nrows, x.cols);
        for r in 0..a.nrows {
            let (s, e) = a.row_range(r);
            for i in s..e {
                let v = p.quantize(a.vals[i]);
                let xrow = x.row(a.col_idx[i] as usize);
                let zrow = z.row_mut(r);
                for (o, &xv) in zrow.iter_mut().zip(xrow) {
                    *o += v * p.quantize(xv);
                }
            }
        }
        SpmmResult { z, run }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        let part = RowWindowPartition::build(a);
        let blocks: Vec<BlockCost> = part
            .windows
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| {
                let mut b = SputnikSpmm::tile_cost(w.nnz, w.nnz_cols(), w.rows, x.cols, dev);
                // Halve every operand stream (values, dense rows, output)
                // and the vector-load transaction count.
                b.dram.bytes_loaded /= 2;
                b.dram.bytes_stored /= 2;
                b.dram.transactions = b.dram.transactions / 2 + 1;
                b
            })
            .collect();
        dev.execute(&blocks)
    }
}

impl SputnikSpmm {
    fn tile_cost(
        nnz: usize,
        distinct_cols: usize,
        rows: usize,
        dim: usize,
        dev: &DeviceSpec,
    ) -> BlockCost {
        let mut b = BlockCost {
            warps: rows.clamp(1, 16) as u32,
            ..Default::default()
        };
        let slices = dim.div_ceil(32);
        // Padded slices: no adaptive tail.
        b.cuda_fma_issues = (nnz * slices) as u64;
        // Vectorized CSR loads: float4/int4 packs 4 entries per lane access;
        // entries stream through L1 with one (cheap, but latency-bearing)
        // transaction per 4 entries per slice.
        b.dram.transactions += (nnz.div_ceil(4) * slices) as u64 * 2;
        b.dram.bytes_loaded += nnz as u64 * 8;
        // Dense gathers: latency per access, but the 1-D tile captures reuse
        // — DRAM bytes are paid per distinct column of the strip, padded to
        // the slice grid.
        b.dram.transactions += (nnz * slices) as u64;
        b.dram.bytes_loaded += (distinct_cols * slices * 32) as u64 * 4;
        // Output store.
        b.dram.bytes_stored += (rows * dim) as u64 * 4;
        b.dram.transactions +=
            rows as u64 * coalesced_transactions(dim as u64 * 4, dev.transaction_bytes);
        b
    }
}

impl SpmmKernel for SputnikSpmm {
    fn name(&self) -> &'static str {
        "Sputnik"
    }

    fn spmm(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> SpmmResult {
        SpmmResult {
            z: a.spmm_reference(x),
            run: self.spmm_run(a, x, dev),
        }
    }

    fn spmm_run(&self, a: &Csr, x: &DenseMatrix, dev: &DeviceSpec) -> gpu_sim::KernelRun {
        // 1-D tiles are strips of 16 rows — reuse RowWindowPartition to get
        // per-strip distinct-column counts.
        let part = RowWindowPartition::build(a);
        let blocks: Vec<BlockCost> = part
            .windows
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| Self::tile_cost(w.nnz, w.nnz_cols(), w.rows, x.cols, dev))
            .collect();
        dev.execute(&blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cusparse::CusparseSpmm;
    use graph_sparse::gen;
    use hc_core::{CudaSpmm, SpmmKernel};

    #[test]
    fn exact_numerics() {
        let a = gen::barabasi_albert(200, 3, 1);
        let x = DenseMatrix::random_features(200, 32, 2);
        let dev = DeviceSpec::rtx3090();
        let r = SputnikSpmm.spmm(&a, &x, &dev);
        assert_eq!(r.z, a.spmm_reference(&x));
    }

    #[test]
    fn beats_cusparse_on_graphs() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(2048, 16_000, 64, 0.85, 3);
        let x = DenseMatrix::random_features(2048, 32, 4);
        let sp = SputnikSpmm.spmm(&a, &x, &dev).run.time_ms;
        let cu = CusparseSpmm.spmm(&a, &x, &dev).run.time_ms;
        assert!(sp < cu, "sputnik {sp} !< cusparse {cu}");
    }

    #[test]
    fn loses_slightly_to_hc_cuda_path() {
        // The paper's HC-SpMM CUDA path adds shared staging + adaptive tail;
        // on an unaligned dim it must win.
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(1024, 6000, 5);
        let x = DenseMatrix::random_features(1024, 47, 6);
        let sp = SputnikSpmm.spmm(&a, &x, &dev).run.time_ms;
        let hc = CudaSpmm::optimized().spmm(&a, &x, &dev).run.time_ms;
        assert!(hc < sp, "hc-cuda {hc} !< sputnik {sp}");
    }
}
